#include "multifrontal/parallel_solve.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/gpublas.hpp"
#include "obs/obs.hpp"
#include "sched/thread_pool.hpp"

namespace mfgpu {

SolveSchedule build_solve_schedule(const SymbolicFactor& sym) {
  const index_t nsup = sym.num_supernodes();
  SolveSchedule sched;
  sched.num_supernodes = nsup;
  sched.level_of.assign(static_cast<std::size_t>(nsup), 0);
  sched.out_ptr.assign(static_cast<std::size_t>(nsup) + 1, 0);
  sched.in_ptr.assign(static_cast<std::size_t>(nsup) + 1, 0);
  if (nsup == 0) {
    sched.level_ptr.assign(1, 0);
    return sched;
  }

  // Height above the leaves. Supernodes are postordered (parent > child),
  // so one ascending pass folds every child into its parent.
  for (index_t s = 0; s < nsup; ++s) {
    const index_t p = sym.supernodes()[static_cast<std::size_t>(s)].parent;
    if (p != -1) {
      auto& lp = sched.level_of[static_cast<std::size_t>(p)];
      lp = std::max(lp, sched.level_of[static_cast<std::size_t>(s)] + 1);
    }
  }
  for (index_t s = 0; s < nsup; ++s) {
    sched.num_levels =
        std::max(sched.num_levels, sched.level_of[static_cast<std::size_t>(s)] + 1);
  }

  // Level-major lists via counting sort (keeps supernode order within a
  // level ascending).
  sched.level_ptr.assign(static_cast<std::size_t>(sched.num_levels) + 1, 0);
  for (index_t s = 0; s < nsup; ++s) {
    ++sched.level_ptr[static_cast<std::size_t>(
        sched.level_of[static_cast<std::size_t>(s)]) + 1];
  }
  for (std::size_t l = 1; l < sched.level_ptr.size(); ++l) {
    sched.level_ptr[l] += sched.level_ptr[l - 1];
    sched.max_level_width =
        std::max(sched.max_level_width,
                 sched.level_ptr[l] - sched.level_ptr[l - 1]);
  }
  sched.level_nodes.resize(static_cast<std::size_t>(nsup));
  {
    std::vector<index_t> cursor(sched.level_ptr.begin(),
                                sched.level_ptr.end() - 1);
    for (index_t s = 0; s < nsup; ++s) {
      const index_t l = sched.level_of[static_cast<std::size_t>(s)];
      sched.level_nodes[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(l)]++)] = s;
    }
  }

  // Dependency runs: walk each source's (sorted) update rows and cut a run
  // at every owner-supernode boundary. Sources ascending by construction.
  for (index_t s = 0; s < nsup; ++s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    const index_t m = sn.num_update_rows();
    index_t t = 0;
    while (t < m) {
      const index_t target =
          sym.snode_of_col(sn.update_rows[static_cast<std::size_t>(t)]);
      // last_col is one past the target's final column: extend the run only
      // while the rows stay strictly below it.
      const index_t last =
          sym.supernodes()[static_cast<std::size_t>(target)].last_col;
      index_t end = t + 1;
      while (end < m && sn.update_rows[static_cast<std::size_t>(end)] < last) {
        ++end;
      }
      sched.runs.push_back(SolveRun{s, target, t, end});
      ++sched.in_ptr[static_cast<std::size_t>(target) + 1];
      t = end;
    }
    sched.out_ptr[static_cast<std::size_t>(s) + 1] =
        static_cast<index_t>(sched.runs.size());
  }
  for (std::size_t i = 1; i < sched.in_ptr.size(); ++i) {
    sched.in_ptr[i] += sched.in_ptr[i - 1];
  }
  sched.in_runs.resize(sched.runs.size());
  {
    std::vector<index_t> cursor(sched.in_ptr.begin(), sched.in_ptr.end() - 1);
    for (std::size_t i = 0; i < sched.runs.size(); ++i) {
      const index_t target = sched.runs[i].target;
      sched.in_runs[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(target)]++)] =
          static_cast<index_t>(i);
    }
  }
  return sched;
}

namespace {

double pivot_triangle_entries(index_t k) {
  return 0.5 * static_cast<double>(k) * static_cast<double>(k + 1);
}

/// Per-supernode cost of one sweep task: the factor entries it streams
/// (once per block) and the x rows it gathers/scatters (once per RHS).
/// Summed over all tasks, one sweep streams every stored factor entry
/// exactly once and moves every update row once per RHS — which is how the
/// one-thread makespan reproduces estimated_solve_seconds(sym, num_rhs).
struct TaskWork {
  double entries = 0.0;
  double rows = 0.0;
};

std::vector<TaskWork> forward_work(const SymbolicFactor& sym,
                                   const SolveSchedule& sched) {
  std::vector<TaskWork> work(static_cast<std::size_t>(sched.num_supernodes));
  for (index_t s = 0; s < sched.num_supernodes; ++s) {
    TaskWork& w = work[static_cast<std::size_t>(s)];
    w.entries = pivot_triangle_entries(
        sym.supernodes()[static_cast<std::size_t>(s)].width());
    for (index_t i = sched.in_ptr[static_cast<std::size_t>(s)];
         i < sched.in_ptr[static_cast<std::size_t>(s) + 1]; ++i) {
      const SolveRun& run =
          sched.runs[static_cast<std::size_t>(
              sched.in_runs[static_cast<std::size_t>(i)])];
      const double len = static_cast<double>(run.t_end - run.t_begin);
      w.entries += len * static_cast<double>(
          sym.supernodes()[static_cast<std::size_t>(run.source)].width());
      w.rows += len;
    }
  }
  return work;
}

std::vector<TaskWork> backward_work(const SymbolicFactor& sym,
                                    const SolveSchedule& sched) {
  std::vector<TaskWork> work(static_cast<std::size_t>(sched.num_supernodes));
  for (index_t s = 0; s < sched.num_supernodes; ++s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    TaskWork& w = work[static_cast<std::size_t>(s)];
    const double m = static_cast<double>(sn.num_update_rows());
    w.entries =
        pivot_triangle_entries(sn.width()) + m * static_cast<double>(sn.width());
    w.rows = m;
  }
  return work;
}

double host_task_seconds(const TaskWork& work, index_t num_rhs) {
  return (work.entries + static_cast<double>(num_rhs) * work.rows) /
         host_assembly_rate();
}

/// Simulated kernel launches of one sweep task on the GpuSim backend: one
/// trsm against the pivot block plus one gemm per dependency run (forward)
/// or one gemm for the whole gather (backward).
struct TaskKernels {
  double seconds = 0.0;  ///< kernel time on the compute stream
  int launches = 0;      ///< host-side enqueues
};

std::vector<TaskKernels> forward_kernels(const SymbolicFactor& sym,
                                         const SolveSchedule& sched,
                                         const ProcessorModel& gpu,
                                         index_t num_rhs) {
  const double r = static_cast<double>(num_rhs);
  std::vector<TaskKernels> kernels(
      static_cast<std::size_t>(sched.num_supernodes));
  for (index_t s = 0; s < sched.num_supernodes; ++s) {
    TaskKernels& tk = kernels[static_cast<std::size_t>(s)];
    const double k = static_cast<double>(
        sym.supernodes()[static_cast<std::size_t>(s)].width());
    for (index_t i = sched.in_ptr[static_cast<std::size_t>(s)];
         i < sched.in_ptr[static_cast<std::size_t>(s) + 1]; ++i) {
      const SolveRun& run =
          sched.runs[static_cast<std::size_t>(
              sched.in_runs[static_cast<std::size_t>(i)])];
      const double len = static_cast<double>(run.t_end - run.t_begin);
      const double kc = static_cast<double>(
          sym.supernodes()[static_cast<std::size_t>(run.source)].width());
      tk.seconds +=
          gpu.gemm.time(2.0 * len * kc * r, std::min({len, kc, r}));
      ++tk.launches;
    }
    tk.seconds += gpu.trsm.time(k * k * r, std::min(k, r));
    ++tk.launches;
  }
  return kernels;
}

std::vector<TaskKernels> backward_kernels(const SymbolicFactor& sym,
                                          const SolveSchedule& sched,
                                          const ProcessorModel& gpu,
                                          index_t num_rhs) {
  const double r = static_cast<double>(num_rhs);
  std::vector<TaskKernels> kernels(
      static_cast<std::size_t>(sched.num_supernodes));
  for (index_t s = 0; s < sched.num_supernodes; ++s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    TaskKernels& tk = kernels[static_cast<std::size_t>(s)];
    const double k = static_cast<double>(sn.width());
    const double m = static_cast<double>(sn.num_update_rows());
    if (m > 0.0) {
      tk.seconds += gpu.gemm.time(2.0 * m * k * r, std::min({m, k, r}));
      ++tk.launches;
    }
    tk.seconds += gpu.trsm.time(k * k * r, std::min(k, r));
    ++tk.launches;
  }
  return kernels;
}

/// Apply one incoming run at its target: the pull form of the serial
/// sweep's scatter. Columns are independent; within a column the (source
/// ascending, j ascending) order reproduces the serial subtraction sequence
/// on every x entry exactly.
template <typename T>
void apply_run(const SymbolicFactor& sym, const std::vector<Matrix<T>>& panels,
               const SolveRun& run, MatrixView<double> x) {
  const SupernodeInfo& src =
      sym.supernodes()[static_cast<std::size_t>(run.source)];
  const auto& panel = panels[static_cast<std::size_t>(run.source)];
  const index_t kc = src.width();
  for (index_t col = 0; col < x.cols(); ++col) {
    for (index_t j = 0; j < kc; ++j) {
      const double xj = x(src.first_col + j, col);
      for (index_t t = run.t_begin; t < run.t_end; ++t) {
        x(src.update_rows[static_cast<std::size_t>(t)], col) -=
            static_cast<double>(panel(kc + t, j)) * xj;
      }
    }
  }
}

template <typename T>
void pivot_forward(const SupernodeInfo& sn, const Matrix<T>& panel,
                   MatrixView<double> x) {
  const index_t k = sn.width();
  for (index_t col = 0; col < x.cols(); ++col) {
    for (index_t j = 0; j < k; ++j) {
      x(sn.first_col + j, col) /= static_cast<double>(panel(j, j));
      const double xj = x(sn.first_col + j, col);
      for (index_t i = j + 1; i < k; ++i) {
        x(sn.first_col + i, col) -= static_cast<double>(panel(i, j)) * xj;
      }
    }
  }
}

template <typename T>
void backward_supernode(const SupernodeInfo& sn, const Matrix<T>& panel,
                        MatrixView<double> x) {
  const index_t k = sn.width();
  const index_t m = sn.num_update_rows();
  for (index_t col = 0; col < x.cols(); ++col) {
    for (index_t j = 0; j < k; ++j) {
      double sum = 0.0;
      for (index_t t = 0; t < m; ++t) {
        sum += static_cast<double>(panel(k + t, j)) *
               x(sn.update_rows[static_cast<std::size_t>(t)], col);
      }
      x(sn.first_col + j, col) -= sum;
    }
    for (index_t j = k - 1; j >= 0; --j) {
      double sum = x(sn.first_col + j, col);
      for (index_t i = j + 1; i < k; ++i) {
        sum -= static_cast<double>(panel(i, j)) * x(sn.first_col + i, col);
      }
      x(sn.first_col + j, col) = sum / static_cast<double>(panel(j, j));
    }
  }
}

/// One worker's pricing state. The numeric work is identical on every
/// backend; only where the virtual time is charged differs.
struct SolveWorker {
  SimClock clock;
  std::unique_ptr<Device> device;  ///< GpuSim backend only
};

template <typename T>
void run_sweeps(const SymbolicFactor& sym, const SolveSchedule& sched,
                const std::vector<Matrix<T>>& panels, MatrixView<double> x,
                const ParallelSolveOptions& options, SolveStats& stats) {
  const index_t nsup = sched.num_supernodes;
  const index_t num_rhs = x.cols();
  const int threads = std::max(1, options.threads);
  const bool gpu = options.backend == SolveBackend::GpuSim;

  std::vector<SolveWorker> workers(static_cast<std::size_t>(threads));
  if (gpu) {
    Device::Options device_options = options.device;
    device_options.numeric = false;  // pricing only; math stays on the host
    for (auto& w : workers) {
      w.device = std::make_unique<Device>(device_options);
    }
  }

  // Per-task virtual costs, precomputed so task bodies stay race-free.
  const std::vector<TaskWork> fwd_work = forward_work(sym, sched);
  const std::vector<TaskWork> bwd_work = backward_work(sym, sched);
  std::vector<TaskKernels> fwd_kernels, bwd_kernels;
  if (gpu) {
    const ProcessorModel& model = workers.front().device->model();
    fwd_kernels = forward_kernels(sym, sched, model, num_rhs);
    bwd_kernels = backward_kernels(sym, sched, model, num_rhs);
  }

  // Virtual completion time of each supernode's segment in the current
  // sweep. Written by the owning task, read by dependents; the pool's
  // acquire-release completion counters order the accesses.
  std::vector<double> ready(static_cast<std::size_t>(nsup), 0.0);

  // Forward edges follow the runs (source -> target); priorities drain the
  // levels bottom-up.
  std::vector<index_t> fwd_succ(sched.runs.size());
  std::vector<index_t> fwd_deps(static_cast<std::size_t>(nsup));
  std::vector<index_t> bwd_succ(sched.runs.size());
  std::vector<index_t> bwd_deps(static_cast<std::size_t>(nsup));
  std::vector<double> fwd_priority(static_cast<std::size_t>(nsup));
  std::vector<double> bwd_priority(static_cast<std::size_t>(nsup));
  for (std::size_t i = 0; i < sched.runs.size(); ++i) {
    fwd_succ[i] = sched.runs[i].target;
    bwd_succ[i] =
        sched.runs[static_cast<std::size_t>(
            sched.in_runs[i])].source;
  }
  for (index_t s = 0; s < nsup; ++s) {
    fwd_deps[static_cast<std::size_t>(s)] =
        sched.in_ptr[static_cast<std::size_t>(s) + 1] -
        sched.in_ptr[static_cast<std::size_t>(s)];
    bwd_deps[static_cast<std::size_t>(s)] =
        sched.out_ptr[static_cast<std::size_t>(s) + 1] -
        sched.out_ptr[static_cast<std::size_t>(s)];
    fwd_priority[static_cast<std::size_t>(s)] =
        -static_cast<double>(sched.level_of[static_cast<std::size_t>(s)]);
    bwd_priority[static_cast<std::size_t>(s)] =
        static_cast<double>(sched.level_of[static_cast<std::size_t>(s)]);
  }

  const TransferModel* transfer =
      gpu ? &workers.front().device->transfer() : nullptr;

  auto price_task = [&](index_t s, int w, const TaskWork& work,
                        const TaskKernels* kernels, double dep_ready) {
    SolveWorker& worker = workers[static_cast<std::size_t>(w)];
    if (!gpu) {
      worker.clock.advance_to(dep_ready);
      worker.clock.advance(host_task_seconds(work, num_rhs));
      ready[static_cast<std::size_t>(s)] = worker.clock.now();
      return;
    }
    // Kernel launches are asynchronous: the host pays the enqueues, the
    // compute stream runs the kernels once the dependencies' segments are
    // (virtually) available.
    worker.clock.advance(static_cast<double>(kernels->launches) *
                         transfer->kernel_enqueue);
    const double done = worker.device->compute_stream().enqueue(
        std::max(worker.clock.now(), dep_ready), kernels->seconds);
    ready[static_cast<std::size_t>(s)] = done;
  };

  auto fwd_body = [&](index_t s, int w) {
    double dep_ready = 0.0;
    for (index_t i = sched.in_ptr[static_cast<std::size_t>(s)];
         i < sched.in_ptr[static_cast<std::size_t>(s) + 1]; ++i) {
      const SolveRun& run =
          sched.runs[static_cast<std::size_t>(
              sched.in_runs[static_cast<std::size_t>(i)])];
      dep_ready =
          std::max(dep_ready, ready[static_cast<std::size_t>(run.source)]);
      apply_run(sym, panels, run, x);
    }
    pivot_forward(sym.supernodes()[static_cast<std::size_t>(s)],
                  panels[static_cast<std::size_t>(s)], x);
    price_task(s, w, fwd_work[static_cast<std::size_t>(s)],
               gpu ? &fwd_kernels[static_cast<std::size_t>(s)] : nullptr,
               dep_ready);
  };

  ThreadPool pool(threads);
  {
    obs::ScopedSpan span("solve", "forward_sweep");
    span.set_arg(0, "levels", sched.num_levels);
    GraphDag dag;
    dag.succ_ptr = sched.out_ptr;
    dag.succ = fwd_succ;
    dag.num_deps = fwd_deps;
    dag.priority = fwd_priority;
    pool.run_dag(dag, fwd_body);
  }
  double forward_done = 0.0;
  for (double t : ready) forward_done = std::max(forward_done, t);
  stats.forward_sim_seconds = forward_done;

  // A supernode's backward task re-reads its own forward segment, so its
  // earliest start also folds the forward completion time.
  const std::vector<double> fwd_ready = ready;

  auto bwd_body = [&](index_t s, int w) {
    double dep_ready = fwd_ready[static_cast<std::size_t>(s)];
    for (index_t i = sched.out_ptr[static_cast<std::size_t>(s)];
         i < sched.out_ptr[static_cast<std::size_t>(s) + 1]; ++i) {
      dep_ready = std::max(
          dep_ready,
          ready[static_cast<std::size_t>(
              sched.runs[static_cast<std::size_t>(i)].target)]);
    }
    backward_supernode(sym.supernodes()[static_cast<std::size_t>(s)],
                       panels[static_cast<std::size_t>(s)], x);
    price_task(s, w, bwd_work[static_cast<std::size_t>(s)],
               gpu ? &bwd_kernels[static_cast<std::size_t>(s)] : nullptr,
               dep_ready);
  };

  {
    obs::ScopedSpan span("solve", "backward_sweep");
    span.set_arg(0, "levels", sched.num_levels);
    GraphDag dag;
    dag.succ_ptr = sched.in_ptr;
    dag.succ = bwd_succ;
    dag.num_deps = bwd_deps;
    dag.priority = bwd_priority;
    pool.run_dag(dag, bwd_body);
  }
  double total = forward_done;
  for (double t : ready) total = std::max(total, t);
  stats.backward_sim_seconds = total - forward_done;
  stats.sim_seconds = total;
}

}  // namespace

Matrix<double> solve(const Analysis& analysis, const Factorization& factor,
                     const Matrix<double>& b, index_t num_rhs,
                     const ParallelSolveOptions& options, SolveStats* stats) {
  const SymbolicFactor& sym = analysis.symbolic;
  const index_t n = sym.n();
  MFGPU_CHECK(factor.numeric, "solve: factor has no numeric data");
  MFGPU_CHECK(factor.num_panels() == sym.num_supernodes(),
              "solve: factor does not match the analysis");
  MFGPU_CHECK(b.rows() == n, "solve: rhs row count mismatch");
  MFGPU_CHECK(num_rhs >= 1 && num_rhs <= b.cols(),
              "solve: num_rhs out of range");

  SolveSchedule local;
  const SolveSchedule* sched = options.schedule;
  if (sched == nullptr) {
    local = build_solve_schedule(sym);
    sched = &local;
  }
  MFGPU_CHECK(sched->num_supernodes == sym.num_supernodes(),
              "solve: schedule does not match the analysis");

  SolveStats run_stats;
  run_stats.levels = sched->num_levels;
  run_stats.num_rhs = num_rhs;
  run_stats.threads = std::max(1, options.threads);

  obs::ScopedSpan span("solve", "blocked_solve");
  span.set_arg(0, "rhs", num_rhs);
  span.set_arg(1, "threads", run_stats.threads);
  span.set_arg(2, "levels", sched->num_levels);

  Matrix<double> x(n, num_rhs);
  {
    std::vector<double> permuted(static_cast<std::size_t>(n));
    for (index_t col = 0; col < num_rhs; ++col) {
      const std::span<const double> in(b.data() + col * n,
                                       static_cast<std::size_t>(n));
      analysis.perm.apply(in, permuted);
      std::copy(permuted.begin(), permuted.end(), x.data() + col * n);
    }
  }

  if (factor.single_precision()) {
    run_sweeps(sym, *sched, factor.panels32, x.view(), options, run_stats);
  } else {
    run_sweeps(sym, *sched, factor.panels, x.view(), options, run_stats);
  }

  {
    std::vector<double> column(static_cast<std::size_t>(n));
    for (index_t col = 0; col < num_rhs; ++col) {
      const std::span<const double> in(x.data() + col * n,
                                       static_cast<std::size_t>(n));
      analysis.perm.apply_inverse(in, column);
      std::copy(column.begin(), column.end(), x.data() + col * n);
    }
  }

  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.increment("solve.calls");
    metrics.observe("solve.rhs", static_cast<double>(num_rhs));
    metrics.gauge_set("solve.levels", static_cast<double>(sched->num_levels));
    metrics.gauge_set("solve.threads",
                      static_cast<double>(run_stats.threads));
    metrics.add("solve.sim.forward_seconds", run_stats.forward_sim_seconds);
    metrics.add("solve.sim.backward_seconds", run_stats.backward_sim_seconds);
    metrics.add("solve.sim.seconds", run_stats.sim_seconds);
    metrics.add("solve.supernode_tasks",
                2.0 * static_cast<double>(sym.num_supernodes()));
  }
  if (stats != nullptr) *stats = run_stats;
  return x;
}

double estimated_solve_seconds(const SymbolicFactor& sym,
                               const SolveSchedule& schedule, index_t num_rhs,
                               int threads) {
  MFGPU_CHECK(num_rhs >= 1, "estimated_solve_seconds: num_rhs must be >= 1");
  MFGPU_CHECK(threads >= 1, "estimated_solve_seconds: threads must be >= 1");
  const double t = static_cast<double>(threads);
  double total = 0.0;
  for (const auto& work : {forward_work(sym, schedule),
                           backward_work(sym, schedule)}) {
    for (index_t l = 0; l < schedule.num_levels; ++l) {
      double level_sum = 0.0;
      double level_max = 0.0;
      for (index_t i = schedule.level_ptr[static_cast<std::size_t>(l)];
           i < schedule.level_ptr[static_cast<std::size_t>(l) + 1]; ++i) {
        const double cost = host_task_seconds(
            work[static_cast<std::size_t>(
                schedule.level_nodes[static_cast<std::size_t>(i)])],
            num_rhs);
        level_sum += cost;
        level_max = std::max(level_max, cost);
      }
      total += std::max(level_max, level_sum / t);
    }
  }
  return total;
}

}  // namespace mfgpu
