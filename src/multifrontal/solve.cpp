#include "multifrontal/solve.hpp"

#include <vector>

#include "gpusim/gpublas.hpp"

namespace mfgpu {

double estimated_solve_seconds(const SymbolicFactor& sym, index_t num_rhs) {
  MFGPU_CHECK(num_rhs >= 1, "estimated_solve_seconds: num_rhs must be >= 1");
  // Factor panels are streamed once per blocked pass; the per-rhs cost is
  // the gather/scatter of each supernode's update rows.
  double update_rows = 0.0;
  for (const auto& sn : sym.supernodes()) {
    update_rows += 2.0 * static_cast<double>(sn.num_update_rows());
  }
  const double stream = 2.0 * static_cast<double>(sym.factor_nnz());
  return (stream + static_cast<double>(num_rhs) * update_rows) /
         host_assembly_rate();
}

double estimated_solve_seconds(const SymbolicFactor& sym) {
  // The single-rhs estimate is DEFINED as the num_rhs == 1 case of the
  // blocked one; keeping one implementation stops the two from drifting.
  return estimated_solve_seconds(sym, 1);
}
namespace {

/// Both sweeps are written generically over the panel scalar type so the
/// same code serves double- and single-precision factors; the solution
/// vector always accumulates in double.
template <typename T>
void forward_sweep(const SymbolicFactor& sym,
                   const std::vector<Matrix<T>>& panels, std::span<double> x) {
  for (index_t s = 0; s < sym.num_supernodes(); ++s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    const auto& panel = panels[static_cast<std::size_t>(s)];
    const index_t k = sn.width();
    const index_t m = sn.num_update_rows();
    double* seg = x.data() + sn.first_col;
    // Forward substitution against the k x k pivot block.
    for (index_t j = 0; j < k; ++j) {
      seg[j] /= static_cast<double>(panel(j, j));
      const double xj = seg[j];
      for (index_t i = j + 1; i < k; ++i) {
        seg[i] -= static_cast<double>(panel(i, j)) * xj;
      }
    }
    // x[update_rows] -= L2 * seg. No skipping of zero seg entries: a
    // data-dependent short-circuit would hide non-finite panel values
    // (NaN * 0 never reaches x), and solve cost must not depend on the
    // values being solved — fault-injected corruption has to surface here.
    for (index_t j = 0; j < k; ++j) {
      const double xj = seg[j];
      for (index_t t = 0; t < m; ++t) {
        x[static_cast<std::size_t>(
            sn.update_rows[static_cast<std::size_t>(t)])] -=
            static_cast<double>(panel(k + t, j)) * xj;
      }
    }
  }
}

template <typename T>
void backward_sweep(const SymbolicFactor& sym,
                    const std::vector<Matrix<T>>& panels,
                    std::span<double> x) {
  for (index_t s = sym.num_supernodes() - 1; s >= 0; --s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    const auto& panel = panels[static_cast<std::size_t>(s)];
    const index_t k = sn.width();
    const index_t m = sn.num_update_rows();
    double* seg = x.data() + sn.first_col;
    // seg -= L2^T * x[update_rows].
    for (index_t j = 0; j < k; ++j) {
      double sum = 0.0;
      for (index_t t = 0; t < m; ++t) {
        sum += static_cast<double>(panel(k + t, j)) *
               x[static_cast<std::size_t>(
                   sn.update_rows[static_cast<std::size_t>(t)])];
      }
      seg[j] -= sum;
    }
    // Backward substitution against the pivot block.
    for (index_t j = k - 1; j >= 0; --j) {
      double sum = seg[j];
      for (index_t i = j + 1; i < k; ++i) {
        sum -= static_cast<double>(panel(i, j)) * seg[i];
      }
      seg[j] = sum / static_cast<double>(panel(j, j));
    }
  }
}

void check_solvable(const Analysis& analysis, const Factorization& factor,
                    std::size_t x_size) {
  MFGPU_CHECK(factor.numeric, "solve: factor has no numeric data");
  MFGPU_CHECK(factor.num_panels() == analysis.symbolic.num_supernodes(),
              "solve: factor does not match the analysis");
  MFGPU_CHECK(static_cast<index_t>(x_size) == analysis.symbolic.n(),
              "solve: size mismatch");
}

}  // namespace

void forward_solve(const Analysis& analysis, const Factorization& factor,
                   std::span<double> x) {
  check_solvable(analysis, factor, x.size());
  if (factor.single_precision()) {
    forward_sweep(analysis.symbolic, factor.panels32, x);
  } else {
    forward_sweep(analysis.symbolic, factor.panels, x);
  }
}

void backward_solve(const Analysis& analysis, const Factorization& factor,
                    std::span<double> x) {
  check_solvable(analysis, factor, x.size());
  if (factor.single_precision()) {
    backward_sweep(analysis.symbolic, factor.panels32, x);
  } else {
    backward_sweep(analysis.symbolic, factor.panels, x);
  }
}

std::vector<double> solve(const Analysis& analysis, const Factorization& factor,
                          std::span<const double> b) {
  const index_t n = analysis.symbolic.n();
  MFGPU_CHECK(static_cast<index_t>(b.size()) == n, "solve: size mismatch");
  std::vector<double> permuted(static_cast<std::size_t>(n));
  analysis.perm.apply(b, permuted);
  forward_solve(analysis, factor, permuted);
  backward_solve(analysis, factor, permuted);
  std::vector<double> x(static_cast<std::size_t>(n));
  analysis.perm.apply_inverse(permuted, x);
  return x;
}

}  // namespace mfgpu
