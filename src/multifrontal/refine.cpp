#include "multifrontal/refine.hpp"

#include <cmath>
#include <cstring>

namespace mfgpu {

double residual_norm(const SparseSpd& a, std::span<const double> x,
                     std::span<const double> b) {
  const auto n = static_cast<std::size_t>(a.n());
  MFGPU_CHECK(x.size() == n && b.size() == n, "residual_norm: size mismatch");
  std::vector<double> ax(n);
  a.multiply(x, ax);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = b[i] - ax[i];
    sum += r * r;
  }
  return std::sqrt(sum);
}

// The scalar API is the one-column case of the blocked loop below — one
// implementation, so the two can never drift (the serving layer's
// batched-vs-unbatched bitwise-identity guarantee rests on this).
RefineResult solve_with_refinement(const SparseSpd& a_original,
                                   const Analysis& analysis,
                                   const Factorization& factor,
                                   std::span<const double> b,
                                   int max_iterations, double tol,
                                   const ParallelSolveOptions& solve_options) {
  const auto n = static_cast<std::size_t>(a_original.n());
  MFGPU_CHECK(b.size() == n, "solve_with_refinement: size mismatch");
  Matrix<double> rhs(static_cast<index_t>(n), 1);
  std::memcpy(rhs.data(), b.data(), n * sizeof(double));
  BlockRefineResult block = solve_with_refinement(
      a_original, analysis, factor, rhs, max_iterations, tol, solve_options);
  RefineResult result;
  result.x.assign(block.x.data(), block.x.data() + n);
  result.residual_norms = std::move(block.residual_norms.front());
  result.iterations = block.iterations.front();
  return result;
}

BlockRefineResult solve_with_refinement(
    const SparseSpd& a_original, const Analysis& analysis,
    const Factorization& factor, const Matrix<double>& b, int max_iterations,
    double tol, const ParallelSolveOptions& solve_options) {
  const auto n = static_cast<std::size_t>(a_original.n());
  const index_t num_rhs = b.cols();
  MFGPU_CHECK(static_cast<std::size_t>(b.rows()) == n,
              "solve_with_refinement: size mismatch");
  MFGPU_CHECK(num_rhs >= 1, "solve_with_refinement: empty rhs block");

  BlockRefineResult result;
  result.x = solve(analysis, factor, b, num_rhs, solve_options);
  result.residual_norms.resize(static_cast<std::size_t>(num_rhs));
  result.iterations.assign(static_cast<std::size_t>(num_rhs), 0);

  auto col_span = [n](const Matrix<double>& m, index_t col) {
    return std::span<const double>(m.data() + col * static_cast<index_t>(n),
                                   n);
  };

  // Per-column refinement state, mirroring the scalar loop exactly: each
  // column converges, stagnates, and reverts on its own norms. A step is
  // not guaranteed to improve (a factor of the wrong or corrupted matrix
  // diverges), so the smallest-residual iterate is tracked per column and
  // the recorded history is truncated back to it on revert — back() always
  // equals residual_norm(a, x_col, b_col), with no duplicated entries.
  std::vector<double> target(static_cast<std::size_t>(num_rhs));
  std::vector<double> best_norm(static_cast<std::size_t>(num_rhs));
  std::vector<std::size_t> best_pos(static_cast<std::size_t>(num_rhs), 0);
  std::vector<std::vector<double>> best_x(static_cast<std::size_t>(num_rhs));
  std::vector<char> done(static_cast<std::size_t>(num_rhs), 0);

  for (index_t col = 0; col < num_rhs; ++col) {
    const auto c = static_cast<std::size_t>(col);
    auto& norms = result.residual_norms[c];
    norms.push_back(
        residual_norm(a_original, col_span(result.x, col), col_span(b, col)));
    double b_norm = 0.0;
    for (double v : col_span(b, col)) b_norm += v * v;
    b_norm = std::sqrt(b_norm);
    target[c] = tol * (b_norm > 0.0 ? b_norm : 1.0);
    best_norm[c] = norms.back();
    best_x[c].assign(col_span(result.x, col).begin(),
                     col_span(result.x, col).end());
  }

  std::vector<index_t> active;
  std::vector<double> residual(n);
  for (int it = 0; it < max_iterations; ++it) {
    active.clear();
    for (index_t col = 0; col < num_rhs; ++col) {
      const auto c = static_cast<std::size_t>(col);
      if (!done[c] && result.residual_norms[c].back() > target[c]) {
        active.push_back(col);
      }
    }
    if (active.empty()) break;

    // r = b - A x per active column, in double precision; then one blocked
    // correction solve for the whole active set.
    Matrix<double> rblock(static_cast<index_t>(n),
                          static_cast<index_t>(active.size()));
    for (std::size_t a = 0; a < active.size(); ++a) {
      const index_t col = active[a];
      std::span<double> r(rblock.data() + static_cast<index_t>(a) *
                                              static_cast<index_t>(n),
                          n);
      a_original.multiply(col_span(result.x, col), r);
      const std::span<const double> bc = col_span(b, col);
      for (std::size_t i = 0; i < n; ++i) r[i] = bc[i] - r[i];
    }
    const Matrix<double> dx =
        solve(analysis, factor, rblock, static_cast<index_t>(active.size()),
              solve_options);

    for (std::size_t a = 0; a < active.size(); ++a) {
      const index_t col = active[a];
      const auto c = static_cast<std::size_t>(col);
      double* x_col = result.x.data() + col * static_cast<index_t>(n);
      const double* dx_col =
          dx.data() + static_cast<index_t>(a) * static_cast<index_t>(n);
      for (std::size_t i = 0; i < n; ++i) x_col[i] += dx_col[i];
      auto& norms = result.residual_norms[c];
      const double norm =
          residual_norm(a_original, col_span(result.x, col), col_span(b, col));
      ++result.iterations[c];
      if (norm < best_norm[c]) {
        best_norm[c] = norm;
        best_pos[c] = norms.size();
        best_x[c].assign(x_col, x_col + n);
      }
      // Stop this column when refinement stagnates (no ~2x improvement).
      if (norm > 0.5 * norms.back()) done[c] = 1;
      norms.push_back(norm);
    }
  }

  for (index_t col = 0; col < num_rhs; ++col) {
    const auto c = static_cast<std::size_t>(col);
    auto& norms = result.residual_norms[c];
    if (best_norm[c] < norms.back()) {
      double* x_col = result.x.data() + col * static_cast<index_t>(n);
      std::memcpy(x_col, best_x[c].data(), n * sizeof(double));
      norms.resize(best_pos[c] + 1);
    }
  }
  return result;
}

}  // namespace mfgpu
