#include "multifrontal/refine.hpp"

#include <cmath>

namespace mfgpu {

double residual_norm(const SparseSpd& a, std::span<const double> x,
                     std::span<const double> b) {
  const auto n = static_cast<std::size_t>(a.n());
  MFGPU_CHECK(x.size() == n && b.size() == n, "residual_norm: size mismatch");
  std::vector<double> ax(n);
  a.multiply(x, ax);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = b[i] - ax[i];
    sum += r * r;
  }
  return std::sqrt(sum);
}

RefineResult solve_with_refinement(const SparseSpd& a_original,
                                   const Analysis& analysis,
                                   const Factorization& factor,
                                   std::span<const double> b,
                                   int max_iterations, double tol) {
  const auto n = static_cast<std::size_t>(a_original.n());
  RefineResult result;
  result.x = solve(analysis, factor, b);
  result.residual_norms.push_back(residual_norm(a_original, result.x, b));

  double b_norm = 0.0;
  for (double v : b) b_norm += v * v;
  b_norm = std::sqrt(b_norm);
  const double target = tol * (b_norm > 0.0 ? b_norm : 1.0);

  // A refinement step is not guaranteed to improve: with a factor of the
  // wrong matrix (or a badly corrupted one) the correction diverges. Track
  // the best iterate seen so the caller always gets the smallest-residual x,
  // never a diverged final step.
  std::vector<double> best_x = result.x;
  double best_norm = result.residual_norms.back();

  std::vector<double> residual(n);
  for (int it = 0; it < max_iterations; ++it) {
    if (result.residual_norms.back() <= target) break;
    // r = b - A x in double precision.
    a_original.multiply(result.x, residual);
    for (std::size_t i = 0; i < n; ++i) residual[i] = b[i] - residual[i];
    // dx = A^{-1} r through the factorization; x += dx.
    const std::vector<double> dx = solve(analysis, factor, residual);
    for (std::size_t i = 0; i < n; ++i) result.x[i] += dx[i];
    const double norm = residual_norm(a_original, result.x, b);
    ++result.iterations;
    if (norm < best_norm) {
      best_norm = norm;
      best_x = result.x;
    }
    // Stop when refinement stagnates (no ~2x improvement).
    if (norm > 0.5 * result.residual_norms.back()) {
      result.residual_norms.push_back(norm);
      break;
    }
    result.residual_norms.push_back(norm);
  }
  if (best_norm < result.residual_norms.back()) {
    result.x = std::move(best_x);
    result.residual_norms.push_back(best_norm);
  }
  return result;
}

}  // namespace mfgpu
