#include "multifrontal/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "policy/policy.hpp"

namespace mfgpu {

std::map<int, TraceBin> bin_by_ops_decade(const FactorizationTrace& trace) {
  std::map<int, TraceBin> bins;
  for (const auto& call : trace.calls) {
    const double ops = call.ops_total();
    if (ops <= 0.0) continue;
    TraceBin& bin = bins[static_cast<int>(std::floor(std::log10(ops)))];
    ++bin.calls;
    bin.potrf += call.t_potrf;
    bin.trsm += call.t_trsm;
    bin.syrk += call.t_syrk;
    bin.copy += call.t_copy;
    bin.total += call.t_total;
  }
  return bins;
}

index_t PolicyBreakdown::total_calls() const {
  index_t sum = 0;
  for (index_t c : calls) sum += c;
  return sum;
}

double PolicyBreakdown::total_time() const {
  double sum = 0.0;
  for (double t : time) sum += t;
  return sum;
}

PolicyBreakdown policy_breakdown(const FactorizationTrace& trace) {
  PolicyBreakdown breakdown;
  for (const auto& call : trace.calls) {
    MFGPU_CHECK(call.policy >= 1 && call.policy <= kMaxPolicyIndex,
                "policy_breakdown: invalid policy in trace");
    ++breakdown.calls[static_cast<std::size_t>(call.policy)];
    breakdown.time[static_cast<std::size_t>(call.policy)] += call.t_total;
  }
  return breakdown;
}

double small_call_fraction(const FactorizationTrace& trace, index_t max_m,
                           index_t max_k) {
  if (trace.calls.empty()) return 0.0;
  index_t small = 0;
  for (const auto& call : trace.calls) {
    if (call.m <= max_m && call.k <= max_k) ++small;
  }
  return static_cast<double>(small) /
         static_cast<double>(trace.calls.size());
}

double small_call_time_fraction(const FactorizationTrace& trace, index_t max_m,
                                index_t max_k) {
  double small = 0.0, total = 0.0;
  for (const auto& call : trace.calls) {
    total += call.t_total;
    if (call.m <= max_m && call.k <= max_k) small += call.t_total;
  }
  return (total > 0.0) ? small / total : 0.0;
}

Grid2D time_distribution_grid(const FactorizationTrace& trace, index_t extent,
                              index_t bin, bool subtract_copy) {
  Grid2D grid(extent, extent, bin);
  for (const auto& call : trace.calls) {
    const double t = subtract_copy
                         ? std::max(call.t_total - call.t_copy, 0.0)
                         : call.t_total;
    grid.add(call.m, call.k, t);
  }
  grid.normalize();
  return grid;
}

}  // namespace mfgpu
