// Level-scheduled parallel supernodal triangular solves with blocked
// multi-RHS streaming.
//
// The serial sweeps in multifrontal/solve.hpp walk the supernodes in
// postorder, one RHS at a time. For serve-style workloads (many solves
// against one cached factorization) that leaves two factors of performance
// on the table:
//
//   * Tree parallelism. Supernodes at the same elimination-tree LEVEL are
//     never ancestor/descendant of one another, so their pivot solves are
//     independent (Ruipeng Li, "On Parallel Solution of Sparse Triangular
//     Linear Systems in CUDA"). build_solve_schedule() extracts the level
//     structure plus the exact dependency runs between supernodes once per
//     symbolic analysis; the sweeps then execute as a dependency DAG on the
//     work-stealing thread pool.
//   * RHS blocking. A blocked solve streams every factor panel ONCE for a
//     whole block of right-hand sides instead of once per RHS; only the
//     per-RHS gather/scatter traffic scales with the block width.
//
// Determinism: the forward sweep is formulated as a PULL — each supernode
// applies its incoming update runs itself, sources in ascending supernode
// order — so every x entry sees the exact subtraction sequence of the
// serial sweep regardless of thread count, schedule, or backend. The
// backward sweep is already a gather. Results are therefore bitwise
// identical to multifrontal/solve.hpp's serial sweeps at every thread
// count, with no separate "deterministic mode" to toggle.
//
// Timing is virtual, like everything else in this repo: each worker owns a
// SimClock, CPU tasks are priced at the memory-bound host assembly rate,
// and SolveBackend::GpuSim prices each supernode task as trsm/gemm kernel
// launches against the device cost model (priced, not computed — the
// authoritative math stays on the host in double, which is what keeps the
// backends bitwise identical).
#pragma once

#include <vector>

#include "dense/matrix.hpp"
#include "gpusim/device.hpp"
#include "multifrontal/factorization.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

/// One maximal contiguous run of a source supernode's update rows owned by
/// a single target supernode: rows update_rows[t_begin..t_end) of `source`
/// fall inside `target`'s column range. Because update rows are sorted and
/// supernode column ranges are contiguous, each (source, target) pair
/// produces exactly one run.
struct SolveRun {
  index_t source = 0;
  index_t target = 0;
  index_t t_begin = 0;
  index_t t_end = 0;
};

/// Values-independent schedule for the triangular sweeps, built once per
/// symbolic factorization (it is a pattern artifact, reusable across
/// refactorizations — cache it next to the Analysis).
struct SolveSchedule {
  index_t num_supernodes = 0;
  /// Number of elimination-tree levels (the schedule's critical-path depth:
  /// a solve cannot finish in fewer than num_levels dependent steps however
  /// many threads are available).
  index_t num_levels = 0;
  /// Height of each supernode above the leaves; ancestors are strictly
  /// higher than descendants.
  std::vector<index_t> level_of;
  /// Level-major supernode lists: level l spans
  /// level_nodes[level_ptr[l] .. level_ptr[l+1]).
  std::vector<index_t> level_ptr;
  std::vector<index_t> level_nodes;
  /// All dependency runs, grouped by source (targets ascending within one
  /// source): runs[out_ptr[s] .. out_ptr[s+1]) have source == s.
  std::vector<SolveRun> runs;
  std::vector<index_t> out_ptr;
  /// Incoming runs per target as indices into `runs`, sources ascending:
  /// in_runs[in_ptr[t] .. in_ptr[t+1]) all have target == t. The ascending
  /// source order is what reproduces the serial sweep's per-entry
  /// accumulation sequence bitwise.
  std::vector<index_t> in_ptr;
  std::vector<index_t> in_runs;
  /// Widest level (supernode count) — the schedule's parallelism ceiling.
  index_t max_level_width = 0;
};

SolveSchedule build_solve_schedule(const SymbolicFactor& sym);

/// Where the per-supernode solve tasks are PRICED (the numeric work always
/// runs on the host in double — see the determinism note above).
enum class SolveBackend {
  Host,   ///< memory-bound host assembly rate per panel stream
  GpuSim  ///< trsm/gemm kernel launches on a simulated device per worker
};

struct ParallelSolveOptions {
  /// Solve thread count; 1 executes entirely on the caller.
  int threads = 1;
  SolveBackend backend = SolveBackend::Host;
  /// Device template for SolveBackend::GpuSim (each worker prices against a
  /// private device built from this).
  Device::Options device;
  /// Optional precomputed schedule for analysis.symbolic (must match).
  /// When null, the schedule is built on the fly.
  const SolveSchedule* schedule = nullptr;
};

/// Virtual-time accounting of one blocked solve.
struct SolveStats {
  index_t levels = 0;
  index_t num_rhs = 0;
  int threads = 1;
  double forward_sim_seconds = 0.0;   ///< forward-sweep virtual makespan
  double backward_sim_seconds = 0.0;  ///< backward-sweep virtual makespan
  double sim_seconds = 0.0;           ///< total virtual makespan
};

/// Blocked multi-RHS solve of A X = B in the ORIGINAL ordering: solves the
/// leading `num_rhs` columns of `b` in one level-scheduled pass that
/// streams each factor panel once for the whole block. Bitwise identical,
/// column for column, to solve(analysis, factor, b.col(j)) for every
/// thread count and backend.
Matrix<double> solve(const Analysis& analysis, const Factorization& factor,
                     const Matrix<double>& b, index_t num_rhs,
                     const ParallelSolveOptions& options = {},
                     SolveStats* stats = nullptr);

/// Deterministic simulated seconds for a blocked `num_rhs` solve on
/// `threads` level-scheduled solve threads: per level, the greedy bound
/// max(longest task, level work / threads), summed over both sweeps. With
/// threads == 1 this equals estimated_solve_seconds(sym, num_rhs) (up to
/// summation-order roundoff), and it is what the solve-throughput bench
/// gates on — unlike an executed work-stealing makespan it does not depend
/// on which worker won each task.
double estimated_solve_seconds(const SymbolicFactor& sym,
                               const SolveSchedule& schedule, index_t num_rhs,
                               int threads);

}  // namespace mfgpu
