// Frontal matrix assembly: scatter of original-matrix entries and
// extend-add of children's update matrices via relative indices.
#pragma once

#include <span>
#include <vector>

#include "dense/matrix.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

/// Dense working storage for one front: an s x s column-major square with
/// s = k + m; only the lower triangle is referenced.
/// Row/column i of the front corresponds to global (permuted) index
/// rows()[i], where the first k entries are the supernode's own columns.
class FrontalMatrix {
 public:
  FrontalMatrix(const SupernodeInfo& sn, bool numeric);
  /// Places the front in caller-provided storage (>= order()^2 doubles,
  /// already zeroed — e.g. a block pushed onto a worker's StackArena) instead
  /// of allocating. The storage must outlive this object.
  FrontalMatrix(const SupernodeInfo& sn, std::span<double> storage);

  index_t k() const noexcept { return k_; }
  index_t m() const noexcept { return m_; }
  index_t order() const noexcept { return k_ + m_; }
  std::span<const index_t> rows() const noexcept { return rows_; }

  MatrixView<double> full() const;
  MatrixView<double> l1() { return full().block(0, 0, k_, k_); }
  MatrixView<double> l2() { return full().block(k_, 0, m_, k_); }
  MatrixView<double> update() { return full().block(k_, k_, m_, m_); }

  /// Scatter the supernode's columns of A (lower triangle) into the front.
  /// Returns the number of entries moved (for assembly-cost charging).
  index_t assemble_from_matrix(const SparseSpd& a, const SupernodeInfo& sn);

  /// Extend-add a child's packed-lower update matrix. `child_rows` are the
  /// child's update rows (global indices, sorted — a subset of this front's
  /// rows). Returns entries added.
  index_t extend_add(std::span<const index_t> child_rows,
                     std::span<const double> child_update_packed);

  /// Pack this front's update block (lower triangle) into `out`
  /// (packed-lower layout). Returns entries moved.
  index_t pack_update(std::span<double> out) const;

 private:
  index_t local_index(index_t global_row) const;

  void build_rows(const SupernodeInfo& sn);

  index_t k_ = 0;
  index_t m_ = 0;
  bool numeric_ = true;
  std::vector<index_t> rows_;
  Matrix<double> storage_;     ///< owning case; empty with external storage
  MatrixView<double> view_;    ///< the front, wherever it lives
};

}  // namespace mfgpu
