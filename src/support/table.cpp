#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mfgpu {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  MFGPU_CHECK(!headers_.empty(), "Table: need at least one column");
}

Table& Table::add_row(std::vector<Cell> cells) {
  MFGPU_CHECK(cells.size() == headers_.size(),
              "Table: row width does not match header count");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format_cell(const Cell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<index_t>(&cell)) {
    return std::to_string(*integer);
  }
  const double value = std::get<double>(cell);
  std::ostringstream os;
  const double magnitude = std::abs(value);
  if (value != 0.0 && (magnitude >= 1e6 || magnitude < 1e-3)) {
    os << std::scientific << std::setprecision(3) << value;
  } else {
    os << std::fixed << std::setprecision(3) << value;
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << std::left << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& cells : rendered) print_row(cells);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) return text;
    std::string out = "\"";
    for (char ch : text) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(format_cell(row[c]));
    }
    os << '\n';
  }
}

std::string format_sci(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace mfgpu
