// Deterministic random number generation used by generators, tests and the
// auto-tuning dataset builder. A thin wrapper around std::mt19937_64 so all
// call sites share one seeding convention and reproducible streams.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_int(index_t lo, index_t hi);
  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-uniform draw in [lo, hi); lo must be > 0.
  double log_uniform(double lo, double hi);
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);
  /// Random permutation of {0, ..., n-1}.
  std::vector<index_t> permutation(index_t n);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mfgpu
