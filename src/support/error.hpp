// Error handling primitives shared by all mfgpu modules.
//
// We follow the C++ Core Guidelines: report errors that the immediate caller
// cannot reasonably be expected to handle via exceptions (E.2), and use a
// project-wide assertion macro for preconditions that indicate programming
// errors (I.6).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace mfgpu {

/// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a matrix expected to be SPD turns out not to be
/// (non-positive pivot during Cholesky).
class NotPositiveDefiniteError : public Error {
 public:
  NotPositiveDefiniteError(std::int64_t column, double pivot);

  /// Global column index (in the permuted matrix) of the offending pivot.
  std::int64_t column() const noexcept { return column_; }
  /// The non-positive pivot value encountered.
  double pivot() const noexcept { return pivot_; }

 private:
  std::int64_t column_;
  double pivot_;
};

/// Thrown on malformed input (bad dimensions, unsorted indices, ...).
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an operation is called in the wrong phase (e.g. solving
/// through a Solver that was analyzed but never factored).
class InvalidStateError : public Error {
 public:
  using Error::Error;
};

/// Thrown when the simulated device runs out of memory.
class DeviceOutOfMemoryError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a simulated device operation faults (see
/// gpusim/fault_injector.hpp). `sticky()` distinguishes a dead device —
/// every subsequent operation will fault too, so retrying on-device is
/// pointless — from a transient fault worth one retry.
class DeviceFaultError : public Error {
 public:
  DeviceFaultError(const std::string& what, bool sticky)
      : Error(what), sticky_(sticky) {}

  bool sticky() const noexcept { return sticky_; }

 private:
  bool sticky_;
};

[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);

/// Precondition / invariant check that is always on (cheap checks only).
#define MFGPU_CHECK(expr, message)                                    \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::mfgpu::fail_check(#expr, __FILE__, __LINE__, (message));      \
    }                                                                 \
  } while (false)

/// Narrowing cast that throws if the value does not fit the target type.
template <typename To, typename From>
To checked_cast(From value) {
  const auto widened = static_cast<std::int64_t>(value);
  if (widened < static_cast<std::int64_t>(std::numeric_limits<To>::min()) ||
      widened > static_cast<std::int64_t>(std::numeric_limits<To>::max())) {
    throw InvalidArgumentError("checked_cast: value out of range");
  }
  return static_cast<To>(value);
}

using index_t = std::int64_t;  ///< Signed index type used across the library.

}  // namespace mfgpu
