#include "support/error.hpp"

#include <sstream>

namespace mfgpu {

NotPositiveDefiniteError::NotPositiveDefiniteError(std::int64_t column,
                                                   double pivot)
    : Error([&] {
        std::ostringstream os;
        os << "matrix is not positive definite: pivot " << pivot
           << " at column " << column;
        return os.str();
      }()),
      column_(column),
      pivot_(pivot) {}

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line << " — "
     << message;
  throw InvalidArgumentError(os.str());
}

}  // namespace mfgpu
