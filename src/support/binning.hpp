// 2-D binning over the (m, k) plane — the paper analyses the distribution of
// factor-update calls using 500x500 (Fig. 2) and 250x250 (Fig. 14) bins.
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

/// Accumulates weighted samples into a regular 2-D grid of bins and renders
/// the grid as CSV or a coarse ASCII heat map.
class Grid2D {
 public:
  /// Bins cover [0, extent_x) x [0, extent_y) with square bins of `bin` size.
  Grid2D(index_t extent_x, index_t extent_y, index_t bin);

  /// Add `weight` to the bin containing (x, y). Out-of-range samples clamp
  /// into the last bin (the paper's plots saturate at the axis limit).
  void add(index_t x, index_t y, double weight);
  /// Mark a bin as observed without weight (used for "has data" masks).
  void touch(index_t x, index_t y) { add(x, y, 0.0); }

  index_t bins_x() const noexcept { return bins_x_; }
  index_t bins_y() const noexcept { return bins_y_; }
  index_t bin_size() const noexcept { return bin_; }
  double at(index_t bx, index_t by) const;
  index_t count_at(index_t bx, index_t by) const;
  /// Mean weight per sample in a bin; `empty_value` when the bin has no samples.
  double mean_at(index_t bx, index_t by, double empty_value = -1.0) const;
  double total() const noexcept { return total_; }

  /// Divide every bin by the grand total (turns weights into fractions).
  void normalize();

  /// CSV: header row of x-bin lower edges, then one row per y bin.
  void write_csv(std::ostream& os, bool means = false) const;
  /// Coarse ASCII heat map using a density ramp " .:-=+*#%@".
  void print_ascii(std::ostream& os, bool means = false) const;
  /// ASCII map where each bin prints the single character produced by
  /// `labeler(bx, by)` (used for the best-policy maps of Figs. 12-13).
  static void print_label_map(std::ostream& os, index_t bins_x, index_t bins_y,
                              const std::function<char(index_t, index_t)>& labeler);

 private:
  std::size_t flat(index_t bx, index_t by) const;

  index_t bins_x_;
  index_t bins_y_;
  index_t bin_;
  std::vector<double> weight_;
  std::vector<index_t> count_;
  double total_ = 0.0;
};

}  // namespace mfgpu
