// Minimal JSON value model + recursive-descent parser. Just enough for the
// tooling side of the repo (bench result files, profiler reports in tests):
// objects, arrays, strings (with escapes), numbers, booleans, null. Writing
// stays with the dedicated emitters (obs/export, obs/bench_json) — this is
// the read path.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Parses one JSON document (throws InvalidArgumentError on malformed
  /// input or trailing garbage).
  static JsonValue parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_object() const noexcept { return type_ == Type::Object; }
  bool is_array() const noexcept { return type_ == Type::Array; }

  /// Typed accessors throw InvalidArgumentError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; null if absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object member lookup that throws InvalidArgumentError when missing.
  const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace mfgpu
