#include "support/binning.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace mfgpu {

namespace {
index_t checked_bins(index_t extent, index_t bin) {
  MFGPU_CHECK(extent > 0 && bin > 0,
              "Grid2D: extents and bin size must be positive");
  return (extent + bin - 1) / bin;
}
}  // namespace

Grid2D::Grid2D(index_t extent_x, index_t extent_y, index_t bin)
    : bins_x_(checked_bins(extent_x, bin)),
      bins_y_(checked_bins(extent_y, bin)),
      bin_(bin) {
  weight_.assign(static_cast<std::size_t>(bins_x_ * bins_y_), 0.0);
  count_.assign(weight_.size(), 0);
}

std::size_t Grid2D::flat(index_t bx, index_t by) const {
  MFGPU_CHECK(bx >= 0 && bx < bins_x_ && by >= 0 && by < bins_y_,
              "Grid2D: bin index out of range");
  return static_cast<std::size_t>(by * bins_x_ + bx);
}

void Grid2D::add(index_t x, index_t y, double weight) {
  const index_t bx = std::min(std::max<index_t>(x, 0) / bin_, bins_x_ - 1);
  const index_t by = std::min(std::max<index_t>(y, 0) / bin_, bins_y_ - 1);
  const std::size_t i = flat(bx, by);
  weight_[i] += weight;
  count_[i] += 1;
  total_ += weight;
}

double Grid2D::at(index_t bx, index_t by) const { return weight_[flat(bx, by)]; }

index_t Grid2D::count_at(index_t bx, index_t by) const {
  return count_[flat(bx, by)];
}

double Grid2D::mean_at(index_t bx, index_t by, double empty_value) const {
  const std::size_t i = flat(bx, by);
  if (count_[i] == 0) return empty_value;
  return weight_[i] / static_cast<double>(count_[i]);
}

void Grid2D::normalize() {
  if (total_ == 0.0) return;
  for (double& w : weight_) w /= total_;
  total_ = 1.0;
}

void Grid2D::write_csv(std::ostream& os, bool means) const {
  os << "k\\m";
  for (index_t bx = 0; bx < bins_x_; ++bx) os << ',' << bx * bin_;
  os << '\n';
  for (index_t by = 0; by < bins_y_; ++by) {
    os << by * bin_;
    for (index_t bx = 0; bx < bins_x_; ++bx) {
      os << ',' << (means ? mean_at(bx, by) : at(bx, by));
    }
    os << '\n';
  }
}

void Grid2D::print_ascii(std::ostream& os, bool means) const {
  static const char kRamp[] = " .:-=+*#%@";
  double max_value = 0.0;
  for (index_t by = 0; by < bins_y_; ++by) {
    for (index_t bx = 0; bx < bins_x_; ++bx) {
      max_value = std::max(max_value, means ? mean_at(bx, by, 0.0) : at(bx, by));
    }
  }
  // Row 0 at the bottom so the plot reads like the paper's axes (k upward).
  for (index_t by = bins_y_ - 1; by >= 0; --by) {
    os << '|';
    for (index_t bx = 0; bx < bins_x_; ++bx) {
      const double v = means ? mean_at(bx, by, 0.0) : at(bx, by);
      int level = 0;
      if (max_value > 0.0 && v > 0.0) {
        level = 1 + static_cast<int>(std::floor(v / max_value * 8.999));
      }
      os << kRamp[std::min(level, 9)];
    }
    os << "|\n";
  }
  os << '+' << std::string(static_cast<std::size_t>(bins_x_), '-') << "+ (m ->)\n";
}

void Grid2D::print_label_map(
    std::ostream& os, index_t bins_x, index_t bins_y,
    const std::function<char(index_t, index_t)>& labeler) {
  for (index_t by = bins_y - 1; by >= 0; --by) {
    os << '|';
    for (index_t bx = 0; bx < bins_x; ++bx) os << labeler(bx, by);
    os << "|\n";
  }
  os << '+' << std::string(static_cast<std::size_t>(bins_x), '-') << "+ (m ->)\n";
}

}  // namespace mfgpu
