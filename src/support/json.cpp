#include "support/json.hpp"

#include <cctype>
#include <cstdlib>

namespace mfgpu {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgumentError("json: " + what + " at offset " +
                               std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_keyword("true")) fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_keyword("false")) fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_keyword("null")) fail("invalid literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::Bool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by any of our emitters; encode them as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  MFGPU_CHECK(type_ == Type::Bool, "json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  MFGPU_CHECK(type_ == Type::Number, "json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  MFGPU_CHECK(type_ == Type::String, "json: value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  MFGPU_CHECK(type_ == Type::Array, "json: value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  MFGPU_CHECK(type_ == Type::Object, "json: value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw InvalidArgumentError("json: missing key \"" + std::string(key) +
                               "\"");
  }
  return *found;
}

}  // namespace mfgpu
