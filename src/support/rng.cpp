#include "support/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mfgpu {

double Rng::uniform(double lo, double hi) {
  MFGPU_CHECK(lo <= hi, "uniform: lo must be <= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

index_t Rng::uniform_int(index_t lo, index_t hi) {
  MFGPU_CHECK(lo <= hi, "uniform_int: lo must be <= hi");
  return std::uniform_int_distribution<index_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::log_uniform(double lo, double hi) {
  MFGPU_CHECK(lo > 0.0 && lo <= hi, "log_uniform: need 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) {
  MFGPU_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0, 1]");
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<index_t> Rng::permutation(index_t n) {
  MFGPU_CHECK(n >= 0, "permutation: n must be non-negative");
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

}  // namespace mfgpu
