// ASCII table / CSV emission used by the benchmark harness to print the
// paper's tables and figure series in a uniform, machine-parseable way.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

/// A cell is either text, an integer, or a double (formatted compactly).
using Cell = std::variant<std::string, index_t, double>;

/// Column-aligned ASCII table with a title, used by bench binaries so every
/// reproduced paper table/figure has a consistent, greppable rendering.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  Table& add_row(std::vector<Cell> cells);
  /// Number of data rows added so far.
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render with box-drawing-free ASCII alignment.
  void print(std::ostream& os) const;
  /// Render as CSV (headers + rows), no title line.
  void write_csv(std::ostream& os) const;

  static std::string format_cell(const Cell& cell);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Engineering-style formatting for op counts / rates ("1.54e+07").
std::string format_sci(double value, int digits = 3);

}  // namespace mfgpu
