#include "sched/task_graph.hpp"

#include "multifrontal/stack_arena.hpp"
#include "symbolic/postorder.hpp"

namespace mfgpu {

TaskGraph build_task_graph(const SymbolicFactor& sym,
                           const SparseSpd& permuted) {
  TaskGraph g;
  g.num_tasks = sym.num_supernodes();
  g.parent.resize(static_cast<std::size_t>(g.num_tasks));
  g.ms.resize(static_cast<std::size_t>(g.num_tasks));
  g.ks.resize(static_cast<std::size_t>(g.num_tasks));
  g.assembly_entries.assign(static_cast<std::size_t>(g.num_tasks), 0.0);

  const auto col_ptr = permuted.col_ptr();
  for (index_t s = 0; s < g.num_tasks; ++s) {
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    g.parent[static_cast<std::size_t>(s)] = sn.parent;
    const index_t m = sn.num_update_rows();
    const index_t k = sn.width();
    g.ms[static_cast<std::size_t>(s)] = m;
    g.ks[static_cast<std::size_t>(s)] = k;
    // Original entries scattered into the front.
    const double a_entries = static_cast<double>(
        col_ptr[static_cast<std::size_t>(sn.last_col)] -
        col_ptr[static_cast<std::size_t>(sn.first_col)]);
    // Pack own update + store the factor panel.
    const double own = static_cast<double>(packed_lower_size(m)) +
                       static_cast<double>((k + m) * k);
    g.assembly_entries[static_cast<std::size_t>(s)] += a_entries + own;
    // Extend-add of this update into the parent is charged to the parent.
    if (sn.parent != -1) {
      g.assembly_entries[static_cast<std::size_t>(sn.parent)] +=
          static_cast<double>(packed_lower_size(m));
    }
  }
  g.children = children_lists(g.parent);
  return g;
}

}  // namespace mfgpu
