// Supernode task DAG for parallel-factorization scheduling. Dependencies
// are exactly the assembly-tree edges: a supernode can factor once all of
// its children have produced their update matrices.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

struct TaskGraph {
  index_t num_tasks = 0;
  std::vector<index_t> parent;                  ///< -1 for roots
  std::vector<std::vector<index_t>> children;
  std::vector<index_t> ms;
  std::vector<index_t> ks;
  /// Memory-bound assembly entries charged to the task's worker (original
  /// entries + extend-add of children + packing its own update + storing
  /// the factor panel).
  std::vector<double> assembly_entries;
};

TaskGraph build_task_graph(const SymbolicFactor& sym, const SparseSpd& permuted);

}  // namespace mfgpu
