// Bounded multi-producer / multi-consumer queue — the admission-control
// primitive of the serving layer (serve/service.hpp), kept generic here
// next to the other scheduling building blocks.
//
// Semantics chosen for request serving:
//   - push() blocks while full (the Block admission policy);
//     try_push() fails immediately instead (the Reject policy).
//   - pop() blocks while empty (and while paused), returning std::nullopt
//     only once the queue is closed AND empty — the consumer's exit signal.
//   - close() wakes every waiter; subsequent pushes fail, already-queued
//     items remain poppable (drain), or can be flushed with drain_now().
//   - extract_if() lets a consumer pull additional matching items out of
//     the middle of the queue (request coalescing / batching).
//   - set_paused(true) holds consumers without rejecting producers, which
//     gives tests and benchmarks a deterministic queue composition.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MFGPU_CHECK(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  /// Blocking push. Returns false only when the queue is or becomes closed
  /// while waiting; the item is consumed (moved from) only on success, so a
  /// failed push leaves it intact for the caller (e.g. to fail its promise).
  bool push(T& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }
  bool push(T&& item) {
    T local = std::move(item);
    return push(local);
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] {
      return (!paused_ && !items_.empty()) || (closed_ && items_.empty());
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Remove up to `max_items` queued items satisfying `pred`, preserving
  /// queue order. Intended for consumers assembling a batch around an item
  /// they just popped.
  template <typename Pred>
  std::vector<T> extract_if(Pred pred, std::size_t max_items) {
    std::vector<T> extracted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = items_.begin();
           it != items_.end() && extracted.size() < max_items;) {
        if (pred(*it)) {
          extracted.push_back(std::move(*it));
          it = items_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!extracted.empty()) not_full_.notify_all();
    return extracted;
  }

  /// Close the queue: producers fail from now on, consumers drain what is
  /// left and then see std::nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      paused_ = false;  // a paused closed queue would deadlock its drain
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Remove and return everything still queued (e.g. to fail pending
  /// requests on a non-draining shutdown).
  std::vector<T> drain_now() {
    std::vector<T> drained;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      drained.assign(std::make_move_iterator(items_.begin()),
                     std::make_move_iterator(items_.end()));
      items_.clear();
    }
    not_full_.notify_all();
    return drained;
  }

  /// While paused, consumers block even when items are queued; producers
  /// are unaffected. Closing clears the pause.
  void set_paused(bool paused) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      paused_ = paused;
    }
    if (!paused) not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace mfgpu
