#include "sched/proportional_map.hpp"

#include <algorithm>
#include <cmath>

#include "policy/policy.hpp"

namespace mfgpu {

std::vector<double> subtree_work(const TaskGraph& graph) {
  std::vector<double> work(static_cast<std::size_t>(graph.num_tasks), 0.0);
  // Tasks are postordered: children precede parents.
  for (index_t t = 0; t < graph.num_tasks; ++t) {
    work[static_cast<std::size_t>(t)] +=
        fu_total_ops(graph.ms[static_cast<std::size_t>(t)],
                     graph.ks[static_cast<std::size_t>(t)]) +
        graph.assembly_entries[static_cast<std::size_t>(t)];
    const index_t p = graph.parent[static_cast<std::size_t>(t)];
    if (p != -1) {
      work[static_cast<std::size_t>(p)] += work[static_cast<std::size_t>(t)];
    }
  }
  return work;
}

std::vector<int> proportional_mapping(const TaskGraph& graph,
                                      int num_workers) {
  MFGPU_CHECK(num_workers > 0, "proportional_mapping: need workers");
  const std::vector<double> work = subtree_work(graph);

  // Worker ranges [lo, hi) per task; roots own everything.
  std::vector<int> lo(static_cast<std::size_t>(graph.num_tasks), 0);
  std::vector<int> hi(static_cast<std::size_t>(graph.num_tasks), num_workers);

  // Root-to-leaf sweep (reverse postorder): split each task's range among
  // its children proportionally to subtree work, keeping slices contiguous.
  for (index_t t = graph.num_tasks - 1; t >= 0; --t) {
    const auto& kids = graph.children[static_cast<std::size_t>(t)];
    if (kids.empty()) continue;
    const int range_lo = lo[static_cast<std::size_t>(t)];
    const int range_hi = hi[static_cast<std::size_t>(t)];
    const int width = range_hi - range_lo;
    if (width <= 1) {
      // Whole subtree pinned to one worker.
      for (index_t c : kids) {
        lo[static_cast<std::size_t>(c)] = range_lo;
        hi[static_cast<std::size_t>(c)] = range_lo + 1;
      }
      continue;
    }
    double total = 0.0;
    for (index_t c : kids) total += work[static_cast<std::size_t>(c)];
    double cursor = static_cast<double>(range_lo);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const index_t c = kids[i];
      const double share =
          (total > 0.0)
              ? work[static_cast<std::size_t>(c)] / total * width
              : static_cast<double>(width) / static_cast<double>(kids.size());
      const int child_lo = std::clamp(
          static_cast<int>(std::floor(cursor)), range_lo, range_hi - 1);
      cursor += share;
      int child_hi = std::clamp(static_cast<int>(std::floor(cursor)),
                                child_lo + 1, range_hi);
      if (i + 1 == kids.size()) child_hi = range_hi;  // absorb rounding
      lo[static_cast<std::size_t>(c)] = child_lo;
      hi[static_cast<std::size_t>(c)] = child_hi;
    }
  }

  std::vector<int> preferred(static_cast<std::size_t>(graph.num_tasks));
  for (index_t t = 0; t < graph.num_tasks; ++t) {
    preferred[static_cast<std::size_t>(t)] = lo[static_cast<std::size_t>(t)];
  }
  return preferred;
}

}  // namespace mfgpu
