// Worker descriptions shared by the scheduling simulator
// (sched/list_scheduler.hpp) and the real-thread execution engine
// (sched/thread_pool.hpp + multifrontal/parallel.hpp): the paper's Table VII
// configurations are lists of these (4 CPU threads; 2 threads + 2 GPUs).
#pragma once

#include <vector>

namespace mfgpu {

struct WorkerSpec {
  bool has_gpu = false;
};

/// `count` CPU-only workers (the plain multithreaded configurations).
inline std::vector<WorkerSpec> cpu_workers(int count) {
  return std::vector<WorkerSpec>(static_cast<std::size_t>(count > 0 ? count : 0));
}

}  // namespace mfgpu
