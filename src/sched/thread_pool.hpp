// Work-stealing thread pool for tree-shaped task DAGs — the real-thread
// counterpart of the list-scheduling *simulation* in sched/list_scheduler.hpp.
//
// The pool executes a forest given as a parent array (the supernodal
// assembly tree: a task becomes ready when all of its children completed).
// Each worker owns a deque: it pushes newly readied parents at the bottom
// and pops from the bottom (LIFO, cache-friendly — the parent's front is
// assembled from update matrices the worker just produced); idle workers
// steal from the top of a victim's deque (FIFO, taking the oldest seeded
// subtree). Initial ready tasks (leaves) are seeded per worker — the caller
// typically passes sched/proportional_map.hpp's mapping so subtrees stay
// worker-local — ordered by a priority (critical-path bottom level): the
// highest-priority leaf is popped first by its owner.
//
// Completion counters are atomics with acquire-release ordering, so every
// write a child task made (its packed update matrix) happens-before the
// parent task's execution, on whichever worker it lands.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "support/error.hpp"

namespace mfgpu {

/// A forest of tasks: parent[t] == -1 for roots. Must be postordered
/// (parent[t] > t), which the supernodal assembly tree always is.
struct TreeDag {
  std::span<const index_t> parent;
  /// Optional (empty = round-robin): worker whose deque each initially-ready
  /// task is seeded into; values are clamped into [0, num_threads).
  std::span<const int> preferred_worker;
  /// Optional (empty = task index): higher runs first on its seeded worker.
  std::span<const double> priority;
};

/// A general dependency DAG in CSR successor form: task t becomes ready once
/// `num_deps[t]` completion notifications arrived, and on completion notifies
/// every task in `succ[succ_ptr[t] .. succ_ptr[t+1])`. Duplicate edges are
/// allowed as long as `num_deps` counts them (each occurrence notifies once)
/// — grouped nodes (e.g. a batch of fronts sharing a parent) can simply list
/// one edge per member. The graph must be acyclic; run_dag validates that
/// num_deps matches the indegree implied by succ.
///
/// This generalizes TreeDag (each tree task has at most one successor, its
/// parent); run_tree lowers to this form. The batched multifrontal driver
/// uses it directly: one node per front *batch*, with successor edges to
/// every member's parent node.
struct GraphDag {
  std::span<const index_t> succ_ptr;  ///< size num_tasks + 1
  std::span<const index_t> succ;      ///< flattened successor lists
  std::span<const index_t> num_deps;  ///< size num_tasks
  /// Optional (empty = round-robin): worker whose deque each initially-ready
  /// task is seeded into; values are clamped into [0, num_threads).
  std::span<const int> preferred_worker;
  /// Optional (empty = task index): higher runs first on its seeded worker.
  std::span<const double> priority;

  index_t num_tasks() const noexcept {
    return static_cast<index_t>(num_deps.size());
  }
};

/// Per-run execution statistics, one slot per worker.
struct PoolRunStats {
  std::vector<std::int64_t> executed;  ///< tasks run by each worker
  std::vector<std::int64_t> steals;    ///< successful steals by each worker
  /// Steal attempts that found the victim's deque empty (a measure of how
  /// starved the run was; failed sweeps also accrue idle_seconds).
  std::vector<std::int64_t> failed_steals;
  std::vector<double> busy_seconds;    ///< wall-clock seconds inside task bodies
  /// Wall-clock seconds the worker spent in the run loop without a task
  /// (deque misses, failed steal sweeps, yields/backoff sleeps). By
  /// construction busy_seconds + idle_seconds == wall_seconds per worker.
  std::vector<double> idle_seconds;
  std::vector<double> wall_seconds;    ///< total seconds inside the run loop

  int num_workers() const noexcept { return static_cast<int>(executed.size()); }

  std::int64_t total_steals() const noexcept {
    std::int64_t total = 0;
    for (std::int64_t s : steals) total += s;
    return total;
  }
  std::int64_t total_failed_steals() const noexcept {
    std::int64_t total = 0;
    for (std::int64_t s : failed_steals) total += s;
    return total;
  }
};

/// Persistent pool of `num_threads - 1` helper threads; the calling thread
/// participates in every run as worker 0, so `num_threads == 1` executes
/// entirely on the caller (no concurrency — bitwise-reproducible ordering).
///
/// `run_tree` blocks until every task ran (or an exception aborted the run),
/// and may be called repeatedly; the destructor shuts the helpers down.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const noexcept;

  /// Execute `body(task, worker)` for every task of `dag`, children before
  /// parents. If any body throws, remaining tasks are abandoned and the
  /// first exception is rethrown here (the pool stays usable). Not
  /// reentrant: one run at a time.
  PoolRunStats run_tree(const TreeDag& dag,
                        const std::function<void(index_t task, int worker)>& body);

  /// Execute `body(task, worker)` for every task of `dag`, predecessors
  /// before successors. Same error and reentrancy contract as run_tree
  /// (which is implemented on top of this).
  PoolRunStats run_dag(const GraphDag& dag,
                       const std::function<void(index_t task, int worker)>& body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfgpu
