// Proportional mapping of the assembly tree onto workers — the classic
// subtree-to-subcube assignment used by distributed multifrontal codes
// (Gupta/Karypis/Kumar; the parallel WSMP the paper builds on): each node
// of the tree owns a contiguous worker range, and children split their
// parent's range proportionally to subtree work. Subtrees then execute
// entirely on their own workers, so only separator update matrices ever
// cross the interconnect.
#pragma once

#include <vector>

#include "sched/task_graph.hpp"

namespace mfgpu {

/// Returns preferred_worker[task] in [0, num_workers). Roots own the full
/// range; a task whose range narrows to one worker pins its whole subtree
/// there.
std::vector<int> proportional_mapping(const TaskGraph& graph, int num_workers);

/// Total factor-update flops in each task's subtree (helper, exposed for
/// tests and work-balance reporting).
std::vector<double> subtree_work(const TaskGraph& graph);

}  // namespace mfgpu
