#include "sched/interconnect.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace mfgpu {

double InterconnectModel::wire_seconds(index_t m) const {
  if (!enabled() || m <= 0) return 0.0;
  return update_bytes(m) / bandwidth;
}

double InterconnectModel::transfer_time(index_t m) const {
  // An m == 0 update matrix carries no data: nothing crosses the wire and
  // no latency is charged (a root-bound front simply has no message).
  if (!enabled() || m <= 0) return 0.0;
  return latency + update_bytes(m) / bandwidth;
}

InterconnectModel shared_memory_link() { return {}; }
InterconnectModel infiniband_link() { return {1e9, 5e-6}; }
InterconnectModel gigabit_link() { return {1e8, 50e-6}; }

std::string link_description(const InterconnectModel& link) {
  if (!link.enabled()) return "shared";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1e B/s + %.1e s", link.bandwidth,
                link.latency);
  return buf;
}

InterconnectModel parse_link(const std::string& spec) {
  if (spec.empty() || spec == "shared") return shared_memory_link();
  if (spec == "infiniband") return infiniband_link();
  if (spec == "gigabit") return gigabit_link();
  const std::size_t comma = spec.find(',');
  if (comma == std::string::npos) {
    throw InvalidArgumentError(
        "parse_link: expected \"shared\", \"infiniband\", \"gigabit\", or "
        "\"<bandwidth>,<latency>\", got \"" + spec + "\"");
  }
  char* end = nullptr;
  const std::string bw_str = spec.substr(0, comma);
  const std::string lat_str = spec.substr(comma + 1);
  const double bandwidth = std::strtod(bw_str.c_str(), &end);
  if (end == bw_str.c_str() || *end != '\0' || bandwidth < 0.0) {
    throw InvalidArgumentError("parse_link: bad bandwidth \"" + bw_str + "\"");
  }
  const double latency = std::strtod(lat_str.c_str(), &end);
  if (end == lat_str.c_str() || *end != '\0' || latency < 0.0) {
    throw InvalidArgumentError("parse_link: bad latency \"" + lat_str + "\"");
  }
  return {bandwidth, latency};
}

}  // namespace mfgpu
