// Inter-node communication model shared by the scheduling simulator
// (sched/list_scheduler.hpp) and the simulated-cluster factorization
// engine (cluster/cluster.hpp).
//
// The paper closes by naming a distributed-memory (cluster) version of the
// solver as its future work; this models the wire between nodes as a
// bandwidth + latency link over which packed update matrices travel.
#pragma once

#include <string>

#include "support/error.hpp"

namespace mfgpu {

/// One point-to-point link between distinct nodes (or workers). bandwidth
/// == 0 means shared memory: a child's update matrix is free to consume
/// from anywhere.
struct InterconnectModel {
  double bandwidth = 0.0;  ///< B/s between distinct nodes (0 = shared mem)
  double latency = 0.0;    ///< s per transfer

  bool enabled() const { return bandwidth > 0.0; }

  /// Bytes on the wire for an m x m packed-lower update matrix (doubles).
  static double update_bytes(index_t m) {
    return static_cast<double>(m) * static_cast<double>(m + 1) / 2.0 * 8.0;
  }

  /// Seconds the wire itself is busy shipping an m x m packed update
  /// matrix (no latency term — the cluster engine serializes these on the
  /// producer's egress lane and adds latency once per message).
  double wire_seconds(index_t m) const;

  /// Total seconds to ship an m x m packed update matrix across: latency
  /// plus wire time. An empty update (m == 0) sends nothing and costs
  /// nothing — no latency is charged.
  double transfer_time(index_t m) const;

  friend bool operator==(const InterconnectModel&,
                         const InterconnectModel&) = default;
};

/// Named presets used throughout benches and docs.
InterconnectModel shared_memory_link();   ///< free (bandwidth 0)
InterconnectModel infiniband_link();      ///< 1 GB/s, 5 us
InterconnectModel gigabit_link();         ///< 0.1 GB/s, 50 us

/// Short human-readable description ("shared", "1.0e+09 B/s + 5.0e-06 s").
std::string link_description(const InterconnectModel& link);

/// Parse a link spec: "shared" | "infiniband" | "gigabit" |
/// "<bandwidth>,<latency>" (B/s and seconds, e.g. "1e9,5e-6").
/// Throws InvalidArgumentError on malformed specs.
InterconnectModel parse_link(const std::string& spec);

}  // namespace mfgpu
