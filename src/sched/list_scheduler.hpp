// Deterministic list-scheduling simulation of a parallel multifrontal
// factorization on W workers (threads), each optionally driving its own
// GPU — the configuration of the paper's 4-thread and "2 CPU threads +
// 2 GPUs" runs (Table VII).
//
// Tasks (supernodes) become ready when all children finish; the scheduler
// picks the ready task with the longest bottom-level (critical-path
// priority) and places it on the earliest-available compatible worker.
// Near the root the tree narrows and large fronts serialize; WSMP splits
// those fronts across threads, which we model with *moldable* tasks: when
// idle workers outnumber ready tasks, a large task gangs them with an
// Amdahl-style efficiency (parallel fraction of the task's work).
//
// This module predicts schedules in simulated time; the real-thread
// execution of the same task graph lives in sched/thread_pool.hpp +
// multifrontal/parallel.hpp (see EXPERIMENTS.md for how the two compare).
// The cluster subsystem (cluster/cluster.hpp) executes real numerics over
// the same InterconnectModel (sched/interconnect.hpp) this dry-run uses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gpusim/fault_injector.hpp"
#include "policy/executors.hpp"
#include "sched/interconnect.hpp"
#include "sched/task_graph.hpp"
#include "sched/worker.hpp"

namespace mfgpu {

/// Knobs of the dry-run list-scheduling simulation.
struct ScheduleOptions {
  ExecutorOptions exec;
  /// Policy used on GPU workers (e.g. a trained model); null = the paper's
  /// baseline hybrid thresholds. CPU-only workers always run P1.
  std::function<Policy(const FuCall& call)> gpu_chooser;
  bool moldable = true;
  /// Fraction of a front's work that scales across ganged workers.
  double parallel_fraction = 0.92;
  /// Tasks smaller than this many ops never gang.
  double moldable_min_ops = 2e5;
  /// Distributed-memory extension: cost of moving update matrices between
  /// workers. Default = shared memory (free).
  InterconnectModel interconnect;
  /// Greedy = earliest-finish placement (best for shared memory);
  /// Proportional = subtree-to-worker mapping (locality for clusters, see
  /// sched/proportional_map.hpp).
  enum class Placement { Greedy, Proportional };
  Placement placement = Placement::Greedy;
  /// Deterministic device-fault model mirroring the tolerant dispatcher
  /// (policy/executors.cpp): each task placed on a live GPU worker draws
  /// its fate from FaultInjector::uniform(faults.seed, task, 0), so the
  /// outcome depends on the task, never on placement order.
  /// device_death_rate kills the worker's device (the wasted on-device
  /// attempt plus a host P1 redo is charged, and every later task on that
  /// worker runs host-only); transient_kernel_rate stacked above it wastes
  /// one attempt (the task is charged twice, the retry succeeds). Transfer
  /// and alloc rates are ignored by this dry-run model.
  FaultInjectorOptions faults;
  /// Circuit breaker: quarantine a GPU worker (treat as CPU-only for all
  /// later placements) after this many transient faults. 0 = never.
  int quarantine_after_faults = 0;
};

struct ScheduleResult {
  double makespan = 0.0;
  std::vector<double> worker_busy;  ///< busy seconds per worker
  double total_task_time = 0.0;     ///< sum of scheduled task durations
  /// Fault model outcomes (see ScheduleOptions::faults): faulted task
  /// placements charged extra time, and GPU workers that ended the run
  /// CPU-only (device death or quarantine).
  std::int64_t faults = 0;
  int quarantined_workers = 0;

  double utilization() const {
    if (makespan <= 0.0 || worker_busy.empty()) return 0.0;
    double busy = 0.0;
    for (double b : worker_busy) busy += b;
    return busy / (makespan * static_cast<double>(worker_busy.size()));
  }
};

ScheduleResult simulate_schedule(const TaskGraph& graph,
                                 const std::vector<WorkerSpec>& workers,
                                 const ScheduleOptions& options = {});

}  // namespace mfgpu
