#include "sched/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_session.hpp"

namespace mfgpu {
namespace {

/// One worker's task queue. A mutex per deque keeps the implementation
/// obviously correct (and ThreadSanitizer-clean); contention is negligible
/// because owners touch only their own deque and steals are rare by design
/// (proportional seeding keeps subtrees worker-local).
struct WorkerDeque {
  std::mutex mu;
  std::deque<index_t> q;

  void push_bottom(index_t t) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(t);
  }
  bool pop_bottom(index_t* t) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    *t = q.back();
    q.pop_back();
    return true;
  }
  bool steal_top(index_t* t) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    *t = q.front();
    q.pop_front();
    return true;
  }
};

/// State of one run_dag invocation, shared by all participating workers.
struct Job {
  const GraphDag* dag = nullptr;
  const std::function<void(index_t, int)>* body = nullptr;
  std::vector<WorkerDeque> deques;
  /// Children still outstanding per task; the worker that drops a counter
  /// to zero pushes the parent onto its own deque. acq_rel ordering makes
  /// every child's writes visible to the parent's executor.
  std::vector<std::atomic<index_t>> pending;
  std::atomic<index_t> remaining{0};
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr error;
  PoolRunStats stats;  ///< per-worker slots; each worker writes only its own

  bool done() const noexcept {
    return abort.load(std::memory_order_acquire) ||
           remaining.load(std::memory_order_acquire) == 0;
  }

  void record_error() {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
    abort.store(true, std::memory_order_release);
  }
};

void work(Job& job, int w, int num_workers) {
  if (obs::enabled() && w > 0) {
    // Helper threads exist only to be pool workers; naming their trace lane
    // puts every sched.worker span of worker w in its own labelled tid row.
    // Worker 0 is the calling thread and keeps its own lane name.
    obs::TraceSession::global().set_current_thread_name(
        "pool worker " + std::to_string(w));
  }
  obs::ScopedSpan span("sched", "worker");
  span.set_arg(0, "worker", w);
  int starved = 0;
  index_t executed = 0;
  std::int64_t steals = 0;
  std::int64_t failed_steals = 0;
  double busy = 0.0;
  const auto enter = std::chrono::steady_clock::now();
  while (!job.done()) {
    index_t t = -1;
    bool got = job.deques[static_cast<std::size_t>(w)].pop_bottom(&t);
    for (int i = 1; !got && i < num_workers; ++i) {
      got = job.deques[static_cast<std::size_t>((w + i) % num_workers)]
                .steal_top(&t);
      if (got) ++steals; else ++failed_steals;
    }
    if (!got) {
      // Starved: everything runnable is executing elsewhere. Yield briefly,
      // then back off to a short sleep (e.g. while the root front runs).
      if (++starved < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      continue;
    }
    starved = 0;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      (*job.body)(t, w);
    } catch (...) {
      job.record_error();
      break;
    }
    busy += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    ++executed;
    const index_t begin = job.dag->succ_ptr[static_cast<std::size_t>(t)];
    const index_t end = job.dag->succ_ptr[static_cast<std::size_t>(t) + 1];
    for (index_t e = begin; e < end; ++e) {
      const index_t p = job.dag->succ[static_cast<std::size_t>(e)];
      if (job.pending[static_cast<std::size_t>(p)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        job.deques[static_cast<std::size_t>(w)].push_bottom(p);
      }
    }
    job.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - enter)
          .count();
  job.stats.executed[static_cast<std::size_t>(w)] = executed;
  job.stats.steals[static_cast<std::size_t>(w)] = steals;
  job.stats.failed_steals[static_cast<std::size_t>(w)] = failed_steals;
  job.stats.busy_seconds[static_cast<std::size_t>(w)] = busy;
  job.stats.wall_seconds[static_cast<std::size_t>(w)] = wall;
  job.stats.idle_seconds[static_cast<std::size_t>(w)] =
      std::max(0.0, wall - busy);
}

}  // namespace

struct ThreadPool::Impl {
  int num_workers = 1;
  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  bool shutdown = false;
  std::uint64_t epoch = 0;
  Job* job = nullptr;
  int helpers_running = 0;
  std::vector<std::thread> helpers;

  void helper_main(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      Job* current = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_start.wait(lock,
                      [&] { return shutdown || (job != nullptr && epoch != seen); });
        if (shutdown) return;
        seen = epoch;
        current = job;
      }
      work(*current, w, num_workers);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--helpers_running == 0) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(std::make_unique<Impl>()) {
  MFGPU_CHECK(num_threads >= 1, "ThreadPool: need at least one thread");
  impl_->num_workers = num_threads;
  impl_->helpers.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) {
    impl_->helpers.emplace_back([this, w] { impl_->helper_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv_start.notify_all();
  for (std::thread& t : impl_->helpers) t.join();
}

int ThreadPool::num_threads() const noexcept { return impl_->num_workers; }

PoolRunStats ThreadPool::run_tree(
    const TreeDag& dag, const std::function<void(index_t, int)>& body) {
  const index_t n = static_cast<index_t>(dag.parent.size());

  // Lower the parent array into CSR successor form: each task's single
  // successor is its parent.
  std::vector<index_t> succ_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> succ;
  std::vector<index_t> deps(static_cast<std::size_t>(n), 0);
  succ.reserve(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    const index_t p = dag.parent[static_cast<std::size_t>(t)];
    MFGPU_CHECK(p == -1 || (p > t && p < n),
                "ThreadPool: dag must be a postordered forest");
    if (p != -1) {
      succ.push_back(p);
      ++deps[static_cast<std::size_t>(p)];
    }
    succ_ptr[static_cast<std::size_t>(t) + 1] =
        static_cast<index_t>(succ.size());
  }

  GraphDag graph;
  graph.succ_ptr = succ_ptr;
  graph.succ = succ;
  graph.num_deps = deps;
  graph.preferred_worker = dag.preferred_worker;
  graph.priority = dag.priority;
  return run_dag(graph, body);
}

PoolRunStats ThreadPool::run_dag(
    const GraphDag& dag, const std::function<void(index_t, int)>& body) {
  const int W = impl_->num_workers;
  const index_t n = dag.num_tasks();
  MFGPU_CHECK(static_cast<index_t>(dag.succ_ptr.size()) == n + 1,
              "ThreadPool: succ_ptr size mismatch");
  MFGPU_CHECK(dag.preferred_worker.empty() ||
                  static_cast<index_t>(dag.preferred_worker.size()) == n,
              "ThreadPool: preferred_worker size mismatch");
  MFGPU_CHECK(dag.priority.empty() ||
                  static_cast<index_t>(dag.priority.size()) == n,
              "ThreadPool: priority size mismatch");

  Job job;
  job.dag = &dag;
  job.body = &body;
  job.deques = std::vector<WorkerDeque>(static_cast<std::size_t>(W));
  job.pending = std::vector<std::atomic<index_t>>(static_cast<std::size_t>(n));
  job.stats.executed.assign(static_cast<std::size_t>(W), 0);
  job.stats.steals.assign(static_cast<std::size_t>(W), 0);
  job.stats.failed_steals.assign(static_cast<std::size_t>(W), 0);
  job.stats.busy_seconds.assign(static_cast<std::size_t>(W), 0.0);
  job.stats.idle_seconds.assign(static_cast<std::size_t>(W), 0.0);
  job.stats.wall_seconds.assign(static_cast<std::size_t>(W), 0.0);
  if (n == 0) return job.stats;

  // Validate that num_deps matches the indegree implied by succ: a mismatch
  // would deadlock the run (task never readied) or fire it early.
  std::vector<index_t> children(static_cast<std::size_t>(n), 0);
  MFGPU_CHECK(dag.succ_ptr[0] == 0 &&
                  dag.succ_ptr[static_cast<std::size_t>(n)] ==
                      static_cast<index_t>(dag.succ.size()),
              "ThreadPool: succ_ptr does not index succ");
  for (const index_t p : dag.succ) {
    MFGPU_CHECK(p >= 0 && p < n, "ThreadPool: successor out of range");
    ++children[static_cast<std::size_t>(p)];
  }
  for (index_t t = 0; t < n; ++t) {
    MFGPU_CHECK(children[static_cast<std::size_t>(t)] ==
                    dag.num_deps[static_cast<std::size_t>(t)],
                "ThreadPool: num_deps does not match successor indegree");
  }
  for (index_t t = 0; t < n; ++t) {
    job.pending[static_cast<std::size_t>(t)].store(
        children[static_cast<std::size_t>(t)], std::memory_order_relaxed);
  }
  job.remaining.store(n, std::memory_order_relaxed);

  // Seed each worker's deque with its initially-ready tasks in ascending
  // priority order: pop_bottom then serves the highest priority first.
  std::vector<std::vector<index_t>> seeds(static_cast<std::size_t>(W));
  for (index_t t = 0; t < n; ++t) {
    if (children[static_cast<std::size_t>(t)] != 0) continue;
    const int owner =
        dag.preferred_worker.empty()
            ? static_cast<int>(t % W)
            : std::clamp(dag.preferred_worker[static_cast<std::size_t>(t)], 0,
                         W - 1);
    seeds[static_cast<std::size_t>(owner)].push_back(t);
  }
  for (int w = 0; w < W; ++w) {
    auto& mine = seeds[static_cast<std::size_t>(w)];
    if (!dag.priority.empty()) {
      std::stable_sort(mine.begin(), mine.end(), [&](index_t a, index_t b) {
        return dag.priority[static_cast<std::size_t>(a)] <
               dag.priority[static_cast<std::size_t>(b)];
      });
    }
    for (index_t t : mine) {
      job.deques[static_cast<std::size_t>(w)].push_bottom(t);
    }
  }

  if (W > 1) {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      MFGPU_CHECK(impl_->job == nullptr, "ThreadPool: run_tree is not reentrant");
      impl_->job = &job;
      impl_->helpers_running = W - 1;
      ++impl_->epoch;
    }
    impl_->cv_start.notify_all();
  }
  work(job, 0, W);
  if (W > 1) {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv_done.wait(lock, [&] { return impl_->helpers_running == 0; });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);

  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    double busy = 0.0;
    double idle = 0.0;
    std::int64_t executed = 0;
    for (int w = 0; w < W; ++w) {
      busy += job.stats.busy_seconds[static_cast<std::size_t>(w)];
      idle += job.stats.idle_seconds[static_cast<std::size_t>(w)];
      executed += job.stats.executed[static_cast<std::size_t>(w)];
    }
    metrics.add("sched.steal_count",
                static_cast<double>(job.stats.total_steals()));
    metrics.add("sched.steal_failed_count",
                static_cast<double>(job.stats.total_failed_steals()));
    metrics.add("sched.worker_busy_seconds", busy);
    metrics.add("sched.worker_idle_seconds", idle);
    metrics.add("sched.pool.tasks_executed", static_cast<double>(executed));
    metrics.gauge_set("sched.pool.workers", static_cast<double>(W));
  }
  return job.stats;
}

}  // namespace mfgpu
