#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>

#include "gpusim/gpublas.hpp"
#include "obs/obs.hpp"
#include "policy/baseline_hybrid.hpp"
#include "sched/proportional_map.hpp"

namespace mfgpu {
namespace {

double gang_speedup(double parallel_fraction, int p) {
  // Amdahl: t(p) = t * ((1 - f) + f / p).
  return 1.0 /
         ((1.0 - parallel_fraction) + parallel_fraction / static_cast<double>(p));
}

}  // namespace

ScheduleResult simulate_schedule(const TaskGraph& graph,
                                 const std::vector<WorkerSpec>& workers,
                                 const ScheduleOptions& options) {
  const index_t n = graph.num_tasks;
  const int num_workers = static_cast<int>(workers.size());
  MFGPU_CHECK(num_workers > 0, "simulate_schedule: need at least one worker");

  obs::ScopedSpan span("sched", "simulate_schedule");
  span.set_arg(0, "tasks", n);
  span.set_arg(1, "workers", num_workers);

  // Per-worker-kind dry-run timers (CPU workers share one; GPU workers each
  // get their own so device pool warm-up is per GPU).
  PolicyTimer cpu_timer(options.exec);
  std::vector<std::unique_ptr<PolicyTimer>> gpu_timers(
      static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    if (workers[static_cast<std::size_t>(w)].has_gpu) {
      gpu_timers[static_cast<std::size_t>(w)] =
          std::make_unique<PolicyTimer>(options.exec);
    }
  }

  auto task_call = [&](index_t t) {
    const index_t m = graph.ms[static_cast<std::size_t>(t)];
    const index_t k = graph.ks[static_cast<std::size_t>(t)];
    return FuCall{.snode = t, .m = m, .k = k, .flops = fu_total_ops(m, k)};
  };
  auto gpu_policy = [&](index_t t) {
    const FuCall call = task_call(t);
    return options.gpu_chooser ? options.gpu_chooser(call)
                               : baseline_choice(paper_thresholds(), call);
  };

  // Deterministic per-task fault fate on a live GPU worker: one draw keyed
  // on the task id alone, so the outcome is placement-independent and the
  // simulated makespan is reproducible for a fixed seed.
  enum class TaskFault { None, Transient, Death };
  const bool faulty = options.faults.any();
  auto task_fault = [&](index_t t) {
    if (!faulty) return TaskFault::None;
    const double u = FaultInjector::uniform(
        options.faults.seed, static_cast<std::uint64_t>(t), 0);
    if (u < options.faults.device_death_rate) return TaskFault::Death;
    if (u - options.faults.device_death_rate <
        options.faults.transient_kernel_rate) {
      return TaskFault::Transient;
    }
    return TaskFault::None;
  };

  // Workers whose device died (or was quarantined) run host-only from then
  // on; mutated only when a placement is committed, never during probing.
  std::vector<char> gpu_lost(static_cast<std::size_t>(num_workers), 0);
  std::vector<int> fault_count(static_cast<std::size_t>(num_workers), 0);

  auto task_duration = [&](index_t t, int worker) {
    const FuCall call = task_call(t);
    const double assembly =
        graph.assembly_entries[static_cast<std::size_t>(t)] /
        host_assembly_rate();
    if (workers[static_cast<std::size_t>(worker)].has_gpu &&
        gpu_lost[static_cast<std::size_t>(worker)] == 0) {
      const Policy p = gpu_policy(t);
      const double gpu =
          gpu_timers[static_cast<std::size_t>(worker)]->time(p, call);
      if (p == Policy::P1) return gpu + assembly;  // no device op to fault
      switch (task_fault(t)) {
        case TaskFault::None:
          break;
        case TaskFault::Transient:
          // One wasted on-device attempt, then the retry succeeds.
          return 2.0 * gpu + assembly;
        case TaskFault::Death:
          // Wasted attempt, then the host P1 fallback redoes the front.
          return gpu + cpu_timer.time(Policy::P1, call) + assembly;
      }
      return gpu + assembly;
    }
    return cpu_timer.time(Policy::P1, call) + assembly;
  };

  // Bottom levels (critical-path priority) with CPU-serial cost as weight.
  std::vector<double> serial_cost(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    serial_cost[static_cast<std::size_t>(t)] = task_duration(t, 0);
  }
  std::vector<double> bottom(static_cast<std::size_t>(n), 0.0);
  for (index_t t = n - 1; t >= 0; --t) {
    const index_t p = graph.parent[static_cast<std::size_t>(t)];
    bottom[static_cast<std::size_t>(t)] =
        serial_cost[static_cast<std::size_t>(t)] +
        ((p != -1) ? bottom[static_cast<std::size_t>(p)] : 0.0);
  }

  std::vector<index_t> pending(static_cast<std::size_t>(n), 0);
  for (index_t t = 0; t < n; ++t) {
    pending[static_cast<std::size_t>(t)] =
        static_cast<index_t>(graph.children[static_cast<std::size_t>(t)].size());
  }

  // Ready max-heap by bottom level.
  auto cmp = [&](index_t a, index_t b) {
    return bottom[static_cast<std::size_t>(a)] < bottom[static_cast<std::size_t>(b)];
  };
  std::priority_queue<index_t, std::vector<index_t>, decltype(cmp)> ready(cmp);
  for (index_t t = 0; t < n; ++t) {
    if (pending[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }

  std::vector<double> free_at(static_cast<std::size_t>(num_workers), 0.0);
  std::vector<double> task_finish(static_cast<std::size_t>(n), 0.0);
  std::vector<int> task_worker(static_cast<std::size_t>(n), 0);
  ScheduleResult result;
  result.worker_busy.assign(static_cast<std::size_t>(num_workers), 0.0);

  // When the task's children ran on other workers, their update matrices
  // must be shipped over the interconnect before assembly can begin
  // (free for shared memory).
  auto data_ready_on = [&](index_t t, int w) {
    double ready_time = 0.0;
    for (index_t c : graph.children[static_cast<std::size_t>(t)]) {
      double arrival = task_finish[static_cast<std::size_t>(c)];
      if (task_worker[static_cast<std::size_t>(c)] != w) {
        arrival += options.interconnect.transfer_time(
            graph.ms[static_cast<std::size_t>(c)]);
      }
      ready_time = std::max(ready_time, arrival);
    }
    return ready_time;
  };

  // Proportional placement pins each task to its mapped worker.
  std::vector<int> mapping;
  if (options.placement == ScheduleOptions::Placement::Proportional) {
    mapping = proportional_mapping(graph, num_workers);
  }

  const bool observing = obs::enabled();
  index_t scheduled = 0;
  while (!ready.empty()) {
    if (observing) {
      obs::MetricsRegistry::global().observe(
          "sched.ready_queue_depth", static_cast<double>(ready.size()));
    }
    const index_t t = ready.top();
    ready.pop();
    ++scheduled;

    // Pick the worker that can start the task earliest (break ties toward
    // GPU workers for big tasks via the duration itself); proportional
    // placement restricts the choice to the mapped worker.
    int best_worker = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    const int w_lo =
        mapping.empty() ? 0 : mapping[static_cast<std::size_t>(t)];
    const int w_hi =
        mapping.empty() ? num_workers : mapping[static_cast<std::size_t>(t)] + 1;
    for (int w = w_lo; w < w_hi; ++w) {
      const double start = std::max(free_at[static_cast<std::size_t>(w)],
                                    data_ready_on(t, w));
      const double finish = start + task_duration(t, w);
      if (finish < best_finish) {
        best_finish = finish;
        best_worker = w;
        best_start = start;
      }
    }

    double duration = best_finish - best_start;
    // Moldable gang: if this is a big task and other workers are idle at
    // best_start with nothing ready to run, fold them in.
    int gang = 1;
    if (options.moldable && ready.empty() &&
        fu_total_ops(graph.ms[static_cast<std::size_t>(t)],
                     graph.ks[static_cast<std::size_t>(t)]) >=
            options.moldable_min_ops) {
      for (int w = 0; w < num_workers; ++w) {
        if (w == best_worker) continue;
        if (free_at[static_cast<std::size_t>(w)] <= best_start + 1e-12) {
          ++gang;
        }
      }
      duration = (best_finish - best_start) /
                 gang_speedup(options.parallel_fraction, gang);
    }

    if (observing) {
      auto& metrics = obs::MetricsRegistry::global();
      metrics.increment("sched.tasks_scheduled");
      if (gang > 1) {
        metrics.increment("sched.gang_tasks");
        metrics.observe("sched.gang_size", static_cast<double>(gang));
      }
    }
    const double finish = best_start + duration;
    free_at[static_cast<std::size_t>(best_worker)] = finish;
    result.worker_busy[static_cast<std::size_t>(best_worker)] += duration;
    if (gang > 1) {
      for (int w = 0; w < num_workers; ++w) {
        if (w == best_worker) continue;
        if (free_at[static_cast<std::size_t>(w)] <= best_start + 1e-12) {
          free_at[static_cast<std::size_t>(w)] = finish;
          result.worker_busy[static_cast<std::size_t>(w)] += duration;
        }
      }
    }
    result.total_task_time += duration;
    result.makespan = std::max(result.makespan, finish);
    task_finish[static_cast<std::size_t>(t)] = finish;
    task_worker[static_cast<std::size_t>(t)] = best_worker;

    // Commit the placed task's fault fate: death turns the worker CPU-only
    // immediately, and the circuit breaker quarantines it after N faults.
    const std::size_t bw = static_cast<std::size_t>(best_worker);
    if (faulty && workers[bw].has_gpu && gpu_lost[bw] == 0 &&
        gpu_policy(t) != Policy::P1) {
      const TaskFault fate = task_fault(t);
      if (fate != TaskFault::None) {
        ++result.faults;
        if (fate == TaskFault::Death) {
          gpu_lost[bw] = 1;
          ++result.quarantined_workers;
        } else {
          ++fault_count[bw];
          if (options.quarantine_after_faults > 0 &&
              fault_count[bw] >= options.quarantine_after_faults) {
            gpu_lost[bw] = 1;
            ++result.quarantined_workers;
          }
        }
      }
    }

    const index_t parent = graph.parent[static_cast<std::size_t>(t)];
    if (parent != -1) {
      if (--pending[static_cast<std::size_t>(parent)] == 0) {
        ready.push(parent);
      }
    }
  }
  MFGPU_CHECK(scheduled == n, "simulate_schedule: not all tasks scheduled");
  if (observing) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.add("sched.makespan_seconds", result.makespan);
    metrics.gauge_set("sched.utilization", result.utilization());
    if (result.faults > 0) {
      metrics.add("sched.fault.tasks", static_cast<double>(result.faults));
    }
    if (result.quarantined_workers > 0) {
      metrics.gauge_set("sched.fault.workers_lost",
                        static_cast<double>(result.quarantined_workers));
    }
  }
  return result;
}

}  // namespace mfgpu
