#include "symbolic/colcounts.hpp"

#include <algorithm>

namespace mfgpu {

std::vector<index_t> factor_column_counts(const SparseSpd& a,
                                          std::span<const index_t> parent) {
  const index_t n = a.n();
  MFGPU_CHECK(static_cast<index_t>(parent.size()) == n,
              "colcounts: parent size mismatch");
  std::vector<index_t> count(static_cast<std::size_t>(n), 1);  // diagonal
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);

  // Row subtree traversal: for each row i, walk up from every j with
  // A(i, j) != 0 (j < i) until reaching a column already marked for row i.
  // Every column visited gains an entry in row i of L. The total work is
  // O(nnz(L)) because the walked paths tile the row subtree exactly.
  // Build row lists once (entries (i, j), j < i).
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    const auto rows = a.column_rows(j);
    for (std::size_t t = 1; t < rows.size(); ++t) {
      ++row_ptr[static_cast<std::size_t>(rows[t]) + 1];
    }
  }
  for (index_t i = 0; i < n; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] += row_ptr[static_cast<std::size_t>(i)];
  }
  std::vector<index_t> row_cols(static_cast<std::size_t>(row_ptr.back()));
  {
    std::vector<index_t> next(row_ptr.begin(), row_ptr.end() - 1);
    for (index_t j = 0; j < n; ++j) {
      const auto rows = a.column_rows(j);
      for (std::size_t t = 1; t < rows.size(); ++t) {
        row_cols[static_cast<std::size_t>(next[static_cast<std::size_t>(rows[t])]++)] = j;
      }
    }
  }

  std::fill(mark.begin(), mark.end(), index_t{-1});
  for (index_t i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (index_t t = row_ptr[static_cast<std::size_t>(i)];
         t < row_ptr[static_cast<std::size_t>(i) + 1]; ++t) {
      index_t j = row_cols[static_cast<std::size_t>(t)];
      while (j != -1 && j < i && mark[static_cast<std::size_t>(j)] != i) {
        mark[static_cast<std::size_t>(j)] = i;
        ++count[static_cast<std::size_t>(j)];
        j = parent[static_cast<std::size_t>(j)];
      }
    }
  }
  return count;
}

}  // namespace mfgpu
