// Supernode detection and relaxed amalgamation.
//
// A fundamental supernode is a maximal run of consecutive columns with
// identical factor structure below the diagonal block (parent[j] == j+1 and
// count[j+1] == count[j] - 1). Relaxed amalgamation then merges a child
// supernode into its parent when the explicit zeros introduced are small —
// trading a little extra storage for larger, BLAS-3-friendlier fronts
// (the supernodal variant the paper's WSMP substrate uses).
#pragma once

#include <span>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

struct SupernodePartition {
  std::vector<index_t> start;         ///< column range of supernode s: [start[s], start[s+1])
  std::vector<index_t> snode_of_col;  ///< inverse map

  index_t count() const noexcept {
    return static_cast<index_t>(start.size()) - 1;
  }
  index_t width(index_t s) const {
    return start[static_cast<std::size_t>(s) + 1] - start[static_cast<std::size_t>(s)];
  }
};

/// Detect fundamental supernodes from a postordered etree + column counts.
SupernodePartition fundamental_supernodes(std::span<const index_t> parent,
                                          std::span<const index_t> colcount);

/// Relaxation rule (CHOLMOD-style): merge when the merged width stays tiny
/// or the fraction of explicit zeros stays below a width-dependent budget.
struct RelaxOptions {
  bool enabled = true;
  index_t tiny_width = 4;     ///< always merge below this merged width
  index_t small_width = 16;   ///< merge if zero fraction <= small_zeros
  double small_zeros = 0.8;
  index_t medium_width = 48;  ///< merge if zero fraction <= medium_zeros
  double medium_zeros = 0.1;
  double large_zeros = 0.05;  ///< any width: merge if fraction <= this
};

/// Decide whether a child/parent pair with the given widths, update-row
/// counts and merged update-row count should amalgamate.
bool should_amalgamate(index_t k_child, index_t m_child, index_t k_parent,
                       index_t m_parent, index_t m_merged,
                       const RelaxOptions& options);

/// Dense-front entry count for a supernode of width k with m update rows.
index_t front_factor_nnz(index_t k, index_t m);

}  // namespace mfgpu
