#include "symbolic/etree.hpp"

namespace mfgpu {

std::vector<index_t> elimination_tree(const SparseSpd& a) {
  const index_t n = a.n();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);

  // Liu's algorithm consumes the *upper* triangle row-wise: when processing
  // column j it needs every i < j with A(i, j) != 0. With lower-triangular
  // column storage, entry (i2, i) with i2 > i serves column j = i2, row i.
  // Iterating columns i in increasing order visits each (row j, i < j) pair
  // in increasing i, which is all the algorithm requires — but entries for a
  // given j arrive interleaved with other columns, so we must keep per-j
  // state in `parent`/`ancestor` only. The standard formulation processes
  // rows; we gather row lists first for clarity.
  std::vector<std::vector<index_t>> row_entries(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const auto rows = a.column_rows(i);
    for (std::size_t t = 1; t < rows.size(); ++t) {
      row_entries[static_cast<std::size_t>(rows[t])].push_back(i);
    }
  }

  for (index_t j = 0; j < n; ++j) {
    for (index_t i : row_entries[static_cast<std::size_t>(j)]) {
      // Walk from i to the root of its current subtree, compressing paths.
      index_t v = i;
      while (v != -1 && v < j) {
        const index_t next = ancestor[static_cast<std::size_t>(v)];
        ancestor[static_cast<std::size_t>(v)] = j;
        if (next == -1) {
          parent[static_cast<std::size_t>(v)] = j;
          break;
        }
        v = next;
      }
    }
  }
  return parent;
}

}  // namespace mfgpu
