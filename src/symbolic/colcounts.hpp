// Column counts of the Cholesky factor L (number of stored entries per
// column, diagonal included), computed without forming L: each row i of A
// induces a "row subtree" of the elimination tree, and column j of L has an
// entry in row i exactly when j lies on that subtree.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.hpp"

namespace mfgpu {

/// Requires a postordered matrix/etree pair. O(nnz(L)) time.
std::vector<index_t> factor_column_counts(const SparseSpd& a,
                                          std::span<const index_t> parent);

}  // namespace mfgpu
