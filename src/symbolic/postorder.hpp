// Postorder of a forest given as a parent array. A postordered elimination
// tree makes every subtree's columns contiguous, which is what lets the
// multifrontal update-matrix stack behave as a true LIFO stack.
#pragma once

#include <span>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

/// Returns `order` with order[p] = vertex visited p-th in a depth-first
/// postorder (children in increasing-index order).
std::vector<index_t> postorder_forest(std::span<const index_t> parent);

/// True if the forest is already postordered (every parent > its children,
/// subtree vertices contiguous).
bool is_postordered(std::span<const index_t> parent);

/// Build children adjacency (first_child / next_sibling flattened to lists).
std::vector<std::vector<index_t>> children_lists(std::span<const index_t> parent);

}  // namespace mfgpu
