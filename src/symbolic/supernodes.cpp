#include "symbolic/supernodes.hpp"

namespace mfgpu {

SupernodePartition fundamental_supernodes(std::span<const index_t> parent,
                                          std::span<const index_t> colcount) {
  const index_t n = static_cast<index_t>(parent.size());
  MFGPU_CHECK(static_cast<index_t>(colcount.size()) == n,
              "supernodes: colcount size mismatch");

  // Number of etree children per column: a column can only extend the
  // current supernode if it has exactly one child (the previous column);
  // otherwise merging would change the structure of other children's rows.
  std::vector<index_t> num_children(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    const index_t p = parent[static_cast<std::size_t>(j)];
    if (p != -1) ++num_children[static_cast<std::size_t>(p)];
  }

  SupernodePartition part;
  part.snode_of_col.assign(static_cast<std::size_t>(n), 0);
  part.start.push_back(0);
  for (index_t j = 1; j < n; ++j) {
    const bool chained = parent[static_cast<std::size_t>(j) - 1] == j &&
                         num_children[static_cast<std::size_t>(j)] == 1 &&
                         colcount[static_cast<std::size_t>(j)] ==
                             colcount[static_cast<std::size_t>(j) - 1] - 1;
    if (!chained) part.start.push_back(j);
    part.snode_of_col[static_cast<std::size_t>(j)] =
        static_cast<index_t>(part.start.size()) - 1;
  }
  part.start.push_back(n);
  return part;
}

index_t front_factor_nnz(index_t k, index_t m) {
  return k * (k + 1) / 2 + m * k;
}

bool should_amalgamate(index_t k_child, index_t m_child, index_t k_parent,
                       index_t m_parent, index_t m_merged,
                       const RelaxOptions& options) {
  if (!options.enabled) return false;
  const index_t k = k_child + k_parent;
  const index_t old_nnz =
      front_factor_nnz(k_child, m_child) + front_factor_nnz(k_parent, m_parent);
  const index_t new_nnz = front_factor_nnz(k, m_merged);
  MFGPU_CHECK(new_nnz >= old_nnz, "amalgamate: merged front cannot shrink");
  const double zero_fraction =
      static_cast<double>(new_nnz - old_nnz) / static_cast<double>(new_nnz);
  if (k <= options.tiny_width) return true;
  if (k <= options.small_width && zero_fraction <= options.small_zeros) return true;
  if (k <= options.medium_width && zero_fraction <= options.medium_zeros) return true;
  return zero_fraction <= options.large_zeros;
}

}  // namespace mfgpu
