// Assembly-tree statistics: shape and available parallelism of the
// supernodal elimination tree. These drive scheduling decisions and the
// reports the benches print (e.g. why 3-D problems parallelize/offload
// better than 2-D ones — the paper's closing remark).
#pragma once

#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

struct TreeStats {
  index_t num_supernodes = 0;
  index_t num_leaves = 0;
  index_t height = 0;  ///< edges on the longest root-to-leaf path
  index_t max_front_order = 0;
  double total_flops = 0.0;
  /// Factor-update flops along the heaviest root-to-leaf path: a lower
  /// bound on any tree-parallel schedule.
  double critical_path_flops = 0.0;

  /// Upper bound on tree-level speedup: total work / critical path.
  double tree_parallelism() const {
    return (critical_path_flops > 0.0) ? total_flops / critical_path_flops
                                       : 1.0;
  }
};

TreeStats supernode_tree_stats(const SymbolicFactor& sym);

}  // namespace mfgpu
