#include "symbolic/postorder.hpp"

namespace mfgpu {

std::vector<std::vector<index_t>> children_lists(
    std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      MFGPU_CHECK(p >= 0 && p < n, "postorder: parent out of range");
      children[static_cast<std::size_t>(p)].push_back(v);
    }
  }
  return children;
}

std::vector<index_t> postorder_forest(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  const auto children = children_lists(parent);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));

  // Iterative DFS: (vertex, next-child cursor).
  std::vector<std::pair<index_t, std::size_t>> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[static_cast<std::size_t>(root)] != -1) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      const auto& kids = children[static_cast<std::size_t>(v)];
      if (cursor < kids.size()) {
        const index_t child = kids[cursor++];
        stack.emplace_back(child, 0);
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  MFGPU_CHECK(static_cast<index_t>(order.size()) == n,
              "postorder: forest has a cycle or dangling parent");
  return order;
}

bool is_postordered(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Necessary and sufficient with contiguity: parent > child for all, and
  // each vertex's subtree occupies [v - size(v) + 1, v].
  std::vector<index_t> subtree(static_cast<std::size_t>(n), 1);
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p == -1) continue;
    if (p <= v) return false;
    subtree[static_cast<std::size_t>(p)] += subtree[static_cast<std::size_t>(v)];
  }
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p == -1) continue;
    // children of p must form contiguous blocks ending right before p or
    // before a later sibling; the cheap check: v + (remaining gap) <= p.
    if (v >= p) return false;
  }
  // Contiguity check via DFS ranges.
  const auto order = postorder_forest(parent);
  for (index_t p = 0; p < n; ++p) {
    if (order[static_cast<std::size_t>(p)] != p) return false;
  }
  return true;
}

}  // namespace mfgpu
