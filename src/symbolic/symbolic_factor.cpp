#include "symbolic/symbolic_factor.hpp"

#include <algorithm>
#include <numeric>

#include "dense/blas.hpp"
#include "obs/metrics.hpp"
#include "symbolic/colcounts.hpp"
#include "symbolic/etree.hpp"
#include "symbolic/postorder.hpp"

namespace mfgpu {

SymbolicFactor::SymbolicFactor(const SparseSpd& a_permuted,
                               const AnalyzeOptions& options)
    : n_(a_permuted.n()) {
  obs::ScopedSpan span("symbolic", "symbolic_factor");
  span.set_arg(0, "n", n_);
  {
    obs::ScopedSpan etree_span("symbolic", "elimination_tree");
    col_parent_ = elimination_tree(a_permuted);
  }
  MFGPU_CHECK(is_postordered(col_parent_),
              "SymbolicFactor: matrix must be postordered (use analyze())");
  const auto counts = [&] {
    obs::ScopedSpan counts_span("symbolic", "column_counts");
    return factor_column_counts(a_permuted, col_parent_);
  }();
  const auto part = [&] {
    obs::ScopedSpan snode_span("symbolic", "fundamental_supernodes");
    return fundamental_supernodes(col_parent_, counts);
  }();
  {
    obs::ScopedSpan structures_span("symbolic", "row_structures");
    compute_structures(a_permuted, part);
  }

  // Sanity: the fundamental supernode structure must reproduce the column
  // counts exactly (update rows + remaining columns of the supernode).
  for (const auto& sn : snodes_) {
    const index_t expected = counts[static_cast<std::size_t>(sn.first_col)];
    const index_t actual = sn.width() + sn.num_update_rows();
    MFGPU_CHECK(actual == expected,
                "SymbolicFactor: supernode structure disagrees with column counts");
  }

  {
    obs::ScopedSpan relax_span("symbolic", "amalgamate");
    amalgamate(options.relax);
  }
  finalize_metrics();
  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.gauge_set("symbolic.supernodes",
                      static_cast<double>(num_supernodes()));
    metrics.gauge_set("symbolic.factor_nnz", static_cast<double>(factor_nnz_));
    metrics.gauge_set("symbolic.factor_flops", factor_flops_);
    metrics.gauge_set("symbolic.peak_update_stack_entries",
                      static_cast<double>(peak_stack_));
  }
}

void SymbolicFactor::compute_structures(const SparseSpd& a,
                                        const SupernodePartition& part) {
  const index_t nsup = part.count();
  snodes_.assign(static_cast<std::size_t>(nsup), SupernodeInfo{});
  snode_of_col_ = part.snode_of_col;

  std::vector<index_t> mark(static_cast<std::size_t>(n_), -1);
  std::vector<std::vector<index_t>> snode_children(static_cast<std::size_t>(nsup));

  // Supernodes are numbered by increasing first column; because columns are
  // postordered, every child supernode has a smaller index than its parent,
  // so one ascending sweep sees children before parents.
  for (index_t s = 0; s < nsup; ++s) {
    auto& sn = snodes_[static_cast<std::size_t>(s)];
    sn.first_col = part.start[static_cast<std::size_t>(s)];
    sn.last_col = part.start[static_cast<std::size_t>(s) + 1];

    auto& rows = sn.update_rows;
    auto add_row = [&](index_t r) {
      if (r >= sn.last_col && mark[static_cast<std::size_t>(r)] != s) {
        mark[static_cast<std::size_t>(r)] = s;
        rows.push_back(r);
      }
    };
    for (index_t j = sn.first_col; j < sn.last_col; ++j) {
      for (index_t r : a.column_rows(j)) add_row(r);
    }
    for (index_t c : snode_children[static_cast<std::size_t>(s)]) {
      for (index_t r : snodes_[static_cast<std::size_t>(c)].update_rows) {
        add_row(r);
      }
    }
    std::sort(rows.begin(), rows.end());

    if (!rows.empty()) {
      sn.parent = snode_of_col_[static_cast<std::size_t>(rows.front())];
      MFGPU_CHECK(sn.parent > s, "SymbolicFactor: parent must follow child");
      snode_children[static_cast<std::size_t>(sn.parent)].push_back(s);
    }
  }
}

void SymbolicFactor::amalgamate(const RelaxOptions& relax) {
  if (!relax.enabled) return;
  const index_t nsup = static_cast<index_t>(snodes_.size());
  std::vector<char> alive(static_cast<std::size_t>(nsup), 1);
  // `absorbed_into[s]` chases merges so children reparent correctly.
  std::vector<index_t> absorbed_into(static_cast<std::size_t>(nsup));
  std::iota(absorbed_into.begin(), absorbed_into.end(), index_t{0});
  auto resolve = [&](index_t s) {
    while (absorbed_into[static_cast<std::size_t>(s)] != s) {
      s = absorbed_into[static_cast<std::size_t>(s)];
    }
    return s;
  };

  for (index_t s = 0; s < nsup; ++s) {
    if (!alive[static_cast<std::size_t>(s)]) continue;
    auto& child = snodes_[static_cast<std::size_t>(s)];
    if (child.parent == -1) continue;
    const index_t t = resolve(child.parent);
    auto& par = snodes_[static_cast<std::size_t>(t)];
    // Only a child whose columns end exactly where the parent's begin can
    // merge without relabeling columns (the rightmost child in postorder).
    if (par.first_col != child.last_col) continue;

    // Merged update rows: parent's rows plus the child's rows that fall
    // beyond the parent's column range.
    std::vector<index_t> merged;
    merged.reserve(par.update_rows.size() + child.update_rows.size());
    std::vector<index_t> child_beyond;
    for (index_t r : child.update_rows) {
      if (r >= par.last_col) child_beyond.push_back(r);
    }
    std::set_union(par.update_rows.begin(), par.update_rows.end(),
                   child_beyond.begin(), child_beyond.end(),
                   std::back_inserter(merged));

    if (!should_amalgamate(child.width(), child.num_update_rows(), par.width(),
                           par.num_update_rows(),
                           static_cast<index_t>(merged.size()), relax)) {
      continue;
    }

    par.first_col = child.first_col;
    par.update_rows = std::move(merged);
    alive[static_cast<std::size_t>(s)] = 0;
    absorbed_into[static_cast<std::size_t>(s)] = t;
  }

  // Compact: rebuild the supernode list, remap parents and snode_of_col.
  std::vector<index_t> new_id(static_cast<std::size_t>(nsup), -1);
  std::vector<SupernodeInfo> compact;
  compact.reserve(static_cast<std::size_t>(nsup));
  for (index_t s = 0; s < nsup; ++s) {
    if (!alive[static_cast<std::size_t>(s)]) continue;
    new_id[static_cast<std::size_t>(s)] = static_cast<index_t>(compact.size());
    compact.push_back(std::move(snodes_[static_cast<std::size_t>(s)]));
  }
  for (auto& sn : compact) {
    if (sn.parent != -1) {
      sn.parent = new_id[static_cast<std::size_t>(resolve(sn.parent))];
      MFGPU_CHECK(sn.parent != -1, "amalgamate: dangling parent");
    }
    for (index_t j = sn.first_col; j < sn.last_col; ++j) {
      snode_of_col_[static_cast<std::size_t>(j)] =
          static_cast<index_t>(&sn - compact.data());
    }
  }
  snodes_ = std::move(compact);
}

void SymbolicFactor::finalize_metrics() {
  factor_nnz_ = 0;
  factor_flops_ = 0.0;
  // Simulate the postorder stack: pushing a supernode's update matrix after
  // popping its children reproduces the numeric phase's memory profile.
  index_t live = 0;
  peak_stack_ = 0;
  std::vector<index_t> live_children(snodes_.size(), 0);

  for (index_t s = 0; s < num_supernodes(); ++s) {
    const auto& sn = snodes_[static_cast<std::size_t>(s)];
    const index_t k = sn.width();
    const index_t m = sn.num_update_rows();
    factor_nnz_ += front_factor_nnz(k, m);
    factor_flops_ += static_cast<double>(potrf_ops(k)) +
                     static_cast<double>(trsm_ops(m, k)) +
                     static_cast<double>(syrk_ops(m, k));
    // Front assembly peak: the front coexists with its children's updates.
    const index_t update_entries = m * (m + 1) / 2;
    live += update_entries;
    peak_stack_ = std::max(peak_stack_, live);
    // Children's update matrices are consumed when this supernode assembles.
    live -= live_children[static_cast<std::size_t>(s)];
    if (sn.parent != -1) {
      live_children[static_cast<std::size_t>(sn.parent)] += update_entries;
    } else {
      live -= update_entries;  // root's update is empty or discarded
    }
  }
}

Analysis analyze(const SparseSpd& a, const Permutation& fill_perm,
                 const AnalyzeOptions& options) {
  MFGPU_CHECK(fill_perm.n() == a.n(), "analyze: permutation size mismatch");
  obs::ScopedSpan span("symbolic", "analyze");
  span.set_arg(0, "n", a.n());
  SparseSpd permuted = a.permuted(fill_perm.new_of_old());

  // Postorder the elimination tree and fold it into the permutation; the
  // postorder is an equivalent reordering (same fill) that makes supernode
  // columns contiguous and the update stack LIFO.
  const auto parent = elimination_tree(permuted);
  const auto post = postorder_forest(parent);
  bool already = true;
  for (index_t p = 0; p < static_cast<index_t>(post.size()); ++p) {
    if (post[static_cast<std::size_t>(p)] != p) { already = false; break; }
  }
  Permutation total = fill_perm;
  if (!already) {
    // post[p] = old column at postorder position p, i.e. old_of_new.
    const Permutation post_perm =
        Permutation::from_elimination_order(std::vector<index_t>(post));
    // Compose: new = post(fill(old)).
    std::vector<index_t> composed(static_cast<std::size_t>(a.n()));
    const auto fill_map = fill_perm.new_of_old();
    const auto post_map = post_perm.new_of_old();
    for (index_t i = 0; i < a.n(); ++i) {
      composed[static_cast<std::size_t>(i)] = post_map[static_cast<std::size_t>(
          fill_map[static_cast<std::size_t>(i)])];
    }
    total = Permutation(std::move(composed));
    permuted = a.permuted(total.new_of_old());
  }

  SymbolicFactor symbolic(permuted, options);
  return Analysis{std::move(total), std::move(permuted), std::move(symbolic)};
}

}  // namespace mfgpu
