#include "symbolic/tree_stats.hpp"

#include <algorithm>
#include <vector>

#include "dense/blas.hpp"

namespace mfgpu {

TreeStats supernode_tree_stats(const SymbolicFactor& sym) {
  TreeStats stats;
  stats.num_supernodes = sym.num_supernodes();
  const auto snodes = sym.supernodes();

  std::vector<char> has_child(static_cast<std::size_t>(stats.num_supernodes), 0);
  std::vector<index_t> depth(static_cast<std::size_t>(stats.num_supernodes), 0);
  std::vector<double> path_flops(static_cast<std::size_t>(stats.num_supernodes),
                                 0.0);

  // Supernodes are postordered (children before parents), so a reverse
  // sweep propagates depth/path data root-to-leaf.
  for (index_t s = stats.num_supernodes - 1; s >= 0; --s) {
    const SupernodeInfo& sn = snodes[static_cast<std::size_t>(s)];
    const double flops = static_cast<double>(potrf_ops(sn.width())) +
                         static_cast<double>(trsm_ops(sn.num_update_rows(),
                                                      sn.width())) +
                         static_cast<double>(syrk_ops(sn.num_update_rows(),
                                                      sn.width()));
    stats.total_flops += flops;
    stats.max_front_order =
        std::max(stats.max_front_order, sn.front_order());
    if (sn.parent != -1) {
      has_child[static_cast<std::size_t>(sn.parent)] = 1;
      depth[static_cast<std::size_t>(s)] =
          depth[static_cast<std::size_t>(sn.parent)] + 1;
      path_flops[static_cast<std::size_t>(s)] =
          path_flops[static_cast<std::size_t>(sn.parent)] + flops;
    } else {
      path_flops[static_cast<std::size_t>(s)] = flops;
    }
    stats.height = std::max(stats.height, depth[static_cast<std::size_t>(s)]);
    stats.critical_path_flops =
        std::max(stats.critical_path_flops, path_flops[static_cast<std::size_t>(s)]);
  }
  for (char c : has_child) {
    if (!c) ++stats.num_leaves;
  }
  return stats;
}

}  // namespace mfgpu
