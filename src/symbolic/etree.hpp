// Elimination tree of a symmetric matrix (Liu's algorithm with path
// compression). parent[j] is the first off-diagonal row of column j of the
// Cholesky factor L; the tree drives all multifrontal data flow.
#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace mfgpu {

/// Returns parent[j] for each column (-1 for roots).
std::vector<index_t> elimination_tree(const SparseSpd& a);

}  // namespace mfgpu
