// Symbolic factorization driver: ordering composition, elimination tree,
// postorder, supernode formation (fundamental + relaxed), and per-supernode
// row structure. The result fully determines the multifrontal numeric phase
// and the (m, k) of every factor-update call — the quantities the paper's
// analysis and auto-tuner operate on.
#pragma once

#include <span>
#include <vector>

#include "ordering/permutation.hpp"
#include "sparse/csc.hpp"
#include "symbolic/supernodes.hpp"

namespace mfgpu {

/// One supernode of the assembly tree.
struct SupernodeInfo {
  index_t first_col = 0;  ///< column range [first_col, last_col)
  index_t last_col = 0;
  index_t parent = -1;  ///< parent supernode, -1 for roots
  /// Row indices strictly below the supernode's columns (sorted ascending,
  /// global permuted indices). m = update_rows.size(), k = width: these are
  /// exactly the paper's F-U dimensions.
  std::vector<index_t> update_rows;

  index_t width() const noexcept { return last_col - first_col; }   ///< k
  index_t num_update_rows() const noexcept {                        ///< m
    return static_cast<index_t>(update_rows.size());
  }
  index_t front_order() const noexcept {                            ///< s = k+m
    return width() + num_update_rows();
  }
};

struct AnalyzeOptions {
  RelaxOptions relax;
};

/// Full symbolic analysis of an already-permuted matrix whose etree is
/// postordered (use `analyze` below for the end-to-end path).
class SymbolicFactor {
 public:
  SymbolicFactor(const SparseSpd& a_permuted, const AnalyzeOptions& options);

  index_t n() const noexcept { return n_; }
  std::span<const index_t> column_parent() const noexcept { return col_parent_; }
  std::span<const SupernodeInfo> supernodes() const noexcept { return snodes_; }
  index_t num_supernodes() const noexcept {
    return static_cast<index_t>(snodes_.size());
  }
  index_t snode_of_col(index_t j) const {
    return snode_of_col_[static_cast<std::size_t>(j)];
  }

  /// Entries of L (supernodal storage, explicit zeros from relaxation
  /// included).
  index_t factor_nnz() const noexcept { return factor_nnz_; }
  /// Total F-U flops over all supernodes: sum of k^3/3 + m k^2 + m^2 k.
  double factor_flops() const noexcept { return factor_flops_; }
  /// Peak number of update-matrix doubles simultaneously live on the
  /// postorder stack (sizing for StackArena).
  index_t peak_update_stack_entries() const noexcept { return peak_stack_; }

 private:
  void compute_structures(const SparseSpd& a, const SupernodePartition& part);
  void amalgamate(const RelaxOptions& relax);
  void finalize_metrics();

  index_t n_ = 0;
  std::vector<index_t> col_parent_;
  std::vector<SupernodeInfo> snodes_;
  std::vector<index_t> snode_of_col_;
  index_t factor_nnz_ = 0;
  double factor_flops_ = 0.0;
  index_t peak_stack_ = 0;
};

/// End-to-end analysis result: the composed permutation (fill ordering +
/// etree postorder), the permuted matrix, and its symbolic factorization.
struct Analysis {
  Permutation perm;
  SparseSpd permuted;
  SymbolicFactor symbolic;
};

/// Orders with `fill_perm` (e.g. minimum_degree / nested_dissection), then
/// composes the etree postorder so the multifrontal stack discipline holds.
Analysis analyze(const SparseSpd& a, const Permutation& fill_perm,
                 const AnalyzeOptions& options = {});

}  // namespace mfgpu
