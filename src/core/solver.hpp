// High-level solver facade: the one-stop API tying the whole system
// together (ordering -> symbolic analysis -> hybrid numeric factorization
// -> solve + refinement), in the spirit of the WSMP interface the paper
// builds on.
//
// The pipeline is phase-split (analyze / factor / refactor / solve), so the
// symbolic analysis — by far the most expensive reusable artifact — is a
// first-class handle that can be factored many times:
//
//   SolverOptions options;
//   options.mode = SolverMode::ModelHybrid;     // auto-tuned policy dispatch
//   options.num_threads = 4;                    // task-parallel numeric phase
//   Solver solver = Solver::analyze(matrix, options);  // symbolic only
//   solver.factor();                            // numeric factorization
//   std::vector<double> x = solver.solve(b);    // refined solve
//   ...
//   solver.refactor(matrix2);                   // same pattern, new values
//   std::vector<double> y = solver.solve(b2);
//
// The classic one-shot constructor Solver(a, options) remains as a thin
// wrapper equivalent to analyze(a, options) followed by factor().
//
// Migration notes (pre-phase-split code keeps compiling unchanged):
//   - Solver(a, options) still analyzes AND factors in one step.
//   - SolverOptions::coordinates is now COPIED during analyze(); callers no
//     longer need to keep the coordinate array alive past construction.
//   - solve() now validates the right-hand-side length and throws
//     InvalidArgumentError on mismatch (previously out-of-bounds reads);
//     calling solve() before factor() throws InvalidStateError.
//   - New options: num_threads / workers / deterministic_reduction select
//     the work-stealing parallel numeric phase (multifrontal/parallel.hpp);
//     the defaults preserve the previous serial behavior exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "autotune/trainer.hpp"
#include "cluster/cluster.hpp"
#include "multifrontal/factorization.hpp"
#include "multifrontal/refine.hpp"
#include "obs/profile.hpp"
#include "obs/whatif.hpp"
#include "sched/worker.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

enum class OrderingChoice {
  Natural,          ///< no reordering (debugging only; heavy fill)
  MinimumDegree,    ///< quotient-graph MD — the general-purpose default
  NestedDissection  ///< geometric ND — needs coordinates, best for meshes
};

enum class SolverMode {
  Serial,          ///< policy P1 everywhere; double precision, no GPU
  BaselineHybrid,  ///< op-count thresholds over P1..P4 (paper P_BH)
  ModelHybrid,     ///< classifier trained on this matrix's calls (P_MH)
  IdealHybrid      ///< retrospective per-call argmin (P_IH; analysis tool)
};

struct SolverOptions {
  OrderingChoice ordering = OrderingChoice::MinimumDegree;
  /// Required (and used) only for OrderingChoice::NestedDissection.
  /// Copied during analyze(); the span need not outlive the call.
  std::span<const std::array<index_t, 3>> coordinates = {};
  SolverMode mode = SolverMode::BaselineHybrid;
  ExecutorOptions executor;
  AnalyzeOptions analysis;
  Device::Options device;
  /// Aggregated small-front execution (multifrontal/batched.hpp): groups
  /// independent same-level small fronts into one simulated kernel dispatch
  /// per step. Off (the default) keeps the per-front drivers bit-for-bit
  /// unchanged; On/Auto produce a bitwise-identical factor either way.
  BatchingOptions batching;
  int max_refinement_steps = 5;
  double refinement_tolerance = 1e-14;

  /// Numeric-phase thread count (> 1 executes the assembly tree on the
  /// work-stealing pool; 1 preserves the serial driver).
  int num_threads = 1;
  /// Explicit worker list for the parallel numeric phase — e.g.
  /// {{.has_gpu=true}, {.has_gpu=true}} for the paper's 2-GPU runs.
  /// Overrides num_threads when non-empty; CPU workers run P1, GPU workers
  /// the mode's policy dispatch, each on a private simulated device.
  std::vector<WorkerSpec> workers;
  /// Fixed child-assembly order in the parallel phase: results are bitwise
  /// identical to the serial factorization for any thread count. Off trades
  /// that for assembling in completion order (roundoff-level differences).
  bool deterministic_reduction = true;
  /// Thread count for the level-scheduled triangular solves
  /// (multifrontal/parallel_solve.hpp): every solve()/solve_with_history()
  /// call runs its sweeps as a dependency DAG on a work-stealing pool of
  /// this many threads. Solutions are bitwise identical at every thread
  /// count (the sweeps are pull-formulated), so this is purely a
  /// throughput knob; 1 (the default) executes entirely on the caller.
  int solve_threads = 1;
  /// Record the numeric phase's schedule flight record
  /// (obs/schedule_record.hpp): every task, dependency join, and primitive
  /// virtual-timing operation, replayable bitwise by obs/whatif.hpp. Costs
  /// a few dozen bytes per event; off by default.
  bool record_schedule = false;
  /// Simulated distributed-cluster numeric phase (cluster/cluster.hpp):
  /// cluster.num_nodes > 0 routes factor() through factorize_cluster —
  /// elimination subtrees on simulated nodes exchanging update-matrix
  /// messages over cluster.link. Takes precedence over num_threads/workers;
  /// the factor stays bitwise identical to the serial driver. The mode's
  /// policy dispatch runs on each GPU-bearing node.
  ClusterOptions cluster;
};

/// The values-independent half of an Analysis: the composed fill ordering
/// and the symbolic factorization of one sparsity pattern. Immutable and
/// shareable — every matrix with the same pattern fingerprint can adopt it
/// through Solver::analyze(a, shared, options) instead of repeating the
/// ordering + symbolic work. This is what the serving layer's
/// AnalysisCache stores.
struct PatternAnalysis {
  PatternAnalysis(std::uint64_t fingerprint_in, Permutation perm_in,
                  SymbolicFactor symbolic_in, AnalyzeOptions analysis_in);

  std::uint64_t fingerprint;  ///< SparseSpd::pattern_fingerprint() of the pattern
  Permutation perm;
  SymbolicFactor symbolic;
  /// Options the symbolic analysis was built with (adopters must match).
  AnalyzeOptions analysis_options;
  /// Approximate heap footprint — the unit of AnalysisCache byte budgets.
  std::size_t approx_bytes = 0;
};

/// Owns the full pipeline state for one matrix. Thread-compatible (no
/// internal synchronization); reuse the factorization across many solves.
class Solver {
 public:
  /// One-shot: analyze(a, options) + factor(). Throws
  /// NotPositiveDefiniteError if the matrix is not SPD.
  Solver(const SparseSpd& a, const SolverOptions& options = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  /// Phase 1: ordering + symbolic analysis only (no numeric work). The
  /// matrix values and coordinates are copied; `a` need not outlive the
  /// returned Solver.
  static Solver analyze(const SparseSpd& a, const SolverOptions& options = {});
  /// Phase 1, skipping the expensive part: adopt a previously computed
  /// PatternAnalysis for a matrix with the SAME sparsity pattern (new
  /// values welcome). Costs one structure copy plus the value permutation —
  /// no ordering, elimination tree, or symbolic factorization is rerun.
  /// Throws InvalidArgumentError when `a`'s pattern fingerprint differs
  /// from `shared->fingerprint`.
  static Solver analyze(const SparseSpd& a,
                        std::shared_ptr<const PatternAnalysis> shared,
                        const SolverOptions& options = {});
  /// Export this solver's ordering + symbolic analysis as a shareable
  /// artifact (copied out once; the solver keeps its own state).
  std::shared_ptr<const PatternAnalysis> share_analysis() const;
  /// Pattern fingerprint of the analyzed matrix.
  std::uint64_t pattern_fingerprint() const noexcept;
  /// Phase 2: numeric factorization of the analyzed matrix. May be called
  /// again to refactor the same values.
  void factor();
  /// Refactor with new values on the SAME sparsity pattern (the symbolic
  /// analysis is reused — the cheap path for time-stepping / Newton loops).
  /// Throws InvalidArgumentError if the pattern differs.
  void refactor(const SparseSpd& a);
  /// True once factor()/refactor() (or the one-shot constructor) completed.
  bool factored() const noexcept;

  /// Solve A x = b with iterative refinement. Throws InvalidArgumentError
  /// if b's size differs from the matrix dimension, InvalidStateError if
  /// the solver has not been factored.
  std::vector<double> solve(std::span<const double> b) const;
  /// Solve for several right-hand sides (columns of B, column-major).
  Matrix<double> solve(const Matrix<double>& b) const;
  /// Residual-history variant.
  RefineResult solve_with_history(std::span<const double> b) const;

  const Analysis& analysis() const noexcept;
  const FactorizationTrace& trace() const noexcept;
  /// Simulated seconds the factorization took under the chosen mode (the
  /// virtual makespan over all workers for parallel runs).
  double factor_time() const noexcept;
  /// Real seconds the last factor()/refactor() took on this machine.
  double factor_wall_seconds() const noexcept;
  /// Simulated host seconds per forward+backward solve (memory-bound
  /// estimate; refinement multiplies this by 1 + #steps).
  double solve_time_estimate() const;
  /// The trained policy model (ModelHybrid mode only).
  const TrainedPolicyModel* model() const noexcept;

  /// Aggregated profile of the last factor()/refactor() (phase breakdown,
  /// worker utilization, (m, k) bins, policy audit vs P_IH). Span- and
  /// decision-derived sections need obs recording active during the run
  /// (ObsScope / MFGPU_TRACE); call before the enclosing scope finishes.
  /// Throws InvalidStateError if the solver has not been factored.
  obs::ProfileReport profile_report() const;

  /// True when a schedule flight record of the last factor()/refactor() is
  /// available (SolverOptions::record_schedule was on and the numeric phase
  /// ran).
  bool schedule_recorded() const noexcept;
  /// The schedule flight record of the last factor()/refactor(). Requires
  /// SolverOptions::record_schedule; throws InvalidStateError when the
  /// solver has not been factored or recording was off.
  const obs::ScheduleRecord& schedule() const;
  /// Critical-path causal analysis of the recorded schedule (per-class
  /// makespan attribution, task spine, CPM slack). Emits sched.cp.* gauges
  /// when obs recording is active. Same preconditions as schedule().
  obs::CriticalPathReport schedule_report() const;
  /// Counterfactual makespan prediction from the recorded schedule (no
  /// numeric rerun). Emits whatif.* metrics when obs recording is active.
  /// Policy/batching knobs construct a PolicyTimer on demand.
  obs::WhatIfResult schedule_whatif(const obs::WhatIfKnobs& knobs) const;

  /// Schedule/traffic statistics of the last cluster-mode factor().
  /// Empty optional when the last numeric phase did not run on the
  /// simulated cluster (SolverOptions::cluster disabled).
  const std::optional<ClusterStats>& cluster_stats() const noexcept;

 private:
  Solver();  ///< used by analyze()

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfgpu
