// High-level solver facade: the one-stop API tying the whole system
// together (ordering -> symbolic analysis -> hybrid numeric factorization
// -> solve + refinement), in the spirit of the WSMP interface the paper
// builds on.
//
//   SolverOptions options;
//   options.mode = SolverMode::ModelHybrid;   // auto-tuned policy dispatch
//   Solver solver(matrix, options);           // analyze + factor
//   std::vector<double> x = solver.solve(b);  // refined solve
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "autotune/trainer.hpp"
#include "multifrontal/factorization.hpp"
#include "multifrontal/refine.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

enum class OrderingChoice {
  Natural,          ///< no reordering (debugging only; heavy fill)
  MinimumDegree,    ///< quotient-graph MD — the general-purpose default
  NestedDissection  ///< geometric ND — needs coordinates, best for meshes
};

enum class SolverMode {
  Serial,          ///< policy P1 everywhere; double precision, no GPU
  BaselineHybrid,  ///< op-count thresholds over P1..P4 (paper P_BH)
  ModelHybrid,     ///< classifier trained on this matrix's calls (P_MH)
  IdealHybrid      ///< retrospective per-call argmin (P_IH; analysis tool)
};

struct SolverOptions {
  OrderingChoice ordering = OrderingChoice::MinimumDegree;
  /// Required (and used) only for OrderingChoice::NestedDissection.
  std::span<const std::array<index_t, 3>> coordinates = {};
  SolverMode mode = SolverMode::BaselineHybrid;
  ExecutorOptions executor;
  AnalyzeOptions analysis;
  Device::Options device;
  int max_refinement_steps = 5;
  double refinement_tolerance = 1e-14;
};

/// Owns the full pipeline state for one matrix. Thread-compatible (no
/// internal synchronization); reuse the factorization across many solves.
class Solver {
 public:
  /// Analyzes and factors immediately. Throws NotPositiveDefiniteError if
  /// the matrix is not SPD.
  Solver(const SparseSpd& a, const SolverOptions& options = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  /// Solve A x = b with iterative refinement.
  std::vector<double> solve(std::span<const double> b) const;
  /// Solve for several right-hand sides (columns of B, column-major).
  Matrix<double> solve(const Matrix<double>& b) const;
  /// Residual-history variant.
  RefineResult solve_with_history(std::span<const double> b) const;

  const Analysis& analysis() const noexcept;
  const FactorizationTrace& trace() const noexcept;
  /// Simulated seconds the factorization took under the chosen mode.
  double factor_time() const noexcept;
  /// Simulated host seconds per forward+backward solve (memory-bound
  /// estimate; refinement multiplies this by 1 + #steps).
  double solve_time_estimate() const;
  /// The trained policy model (ModelHybrid mode only).
  const TrainedPolicyModel* model() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfgpu
