#include "core/solver.hpp"

#include "autotune/hybrid.hpp"
#include "multifrontal/solve.hpp"
#include "obs/obs.hpp"
#include "ordering/minimum_degree.hpp"
#include "ordering/nested_dissection.hpp"
#include "policy/baseline_hybrid.hpp"

namespace mfgpu {

struct Solver::Impl {
  const SparseSpd* matrix = nullptr;
  SolverOptions options;
  std::optional<Analysis> analysis;
  std::optional<Factorization> factor;
  FactorizationTrace trace;
  std::optional<TrainedPolicyModel> model;
  std::unique_ptr<Device> device;
  std::unique_ptr<PolicyTimer> timer;
  double factor_time = 0.0;

  std::unique_ptr<FuExecutor> choose_executor();
};

namespace {

Permutation choose_ordering(const SparseSpd& a, const SolverOptions& options) {
  switch (options.ordering) {
    case OrderingChoice::Natural:
      return Permutation::identity(a.n());
    case OrderingChoice::MinimumDegree:
      return minimum_degree(build_graph(a));
    case OrderingChoice::NestedDissection:
      MFGPU_CHECK(static_cast<index_t>(options.coordinates.size()) == a.n(),
                  "Solver: nested dissection needs one coordinate per unknown");
      return nested_dissection(options.coordinates);
  }
  throw InvalidArgumentError("Solver: invalid ordering choice");
}

}  // namespace

std::unique_ptr<FuExecutor> Solver::Impl::choose_executor() {
  switch (options.mode) {
    case SolverMode::Serial:
      return std::make_unique<PolicyExecutor>(Policy::P1, options.executor);
    case SolverMode::BaselineHybrid:
      return std::make_unique<DispatchExecutor>(
          make_baseline_hybrid(paper_thresholds(), options.executor));
    case SolverMode::ModelHybrid: {
      // Train on this matrix's own call distribution (the paper's
      // methodology: learn from the observed timing data).
      obs::ScopedSpan span("solver", "train_policy_model");
      timer = std::make_unique<PolicyTimer>(options.executor);
      const PolicyDataset dataset =
          build_dataset(dims_from_symbolic(analysis->symbolic), *timer);
      model = train_expected_time(dataset);
      return std::make_unique<DispatchExecutor>(
          make_model_hybrid(*model, options.executor));
    }
    case SolverMode::IdealHybrid:
      timer = std::make_unique<PolicyTimer>(options.executor);
      return std::make_unique<DispatchExecutor>(
          make_ideal_hybrid(*timer, options.executor));
  }
  throw InvalidArgumentError("Solver: invalid mode");
}

Solver::Solver(const SparseSpd& a, const SolverOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->matrix = &a;
  impl_->options = options;
  {
    obs::ScopedSpan span("solver", "analyze");
    span.set_arg(0, "n", a.n());
    impl_->analysis = analyze(a, choose_ordering(a, options), options.analysis);
  }

  const auto executor = impl_->choose_executor();
  FactorContext ctx;
  if (options.mode != SolverMode::Serial) {
    Device::Options device_options = options.device;
    device_options.numeric = true;
    impl_->device = std::make_unique<Device>(device_options);
    ctx.device = impl_->device.get();
  }
  obs::ScopedSpan span("solver", "numeric_factorization", &ctx.host_clock);
  FactorizeResult result = factorize(*impl_->analysis, *executor, ctx);
  impl_->factor = std::move(result.factor);
  impl_->trace = std::move(result.trace);
  impl_->factor_time = impl_->trace.total_time;
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

std::vector<double> Solver::solve(std::span<const double> b) const {
  return solve_with_history(b).x;
}

Matrix<double> Solver::solve(const Matrix<double>& b) const {
  MFGPU_CHECK(b.rows() == impl_->matrix->n(), "Solver::solve: rhs size");
  Matrix<double> x(b.rows(), b.cols());
  for (index_t j = 0; j < b.cols(); ++j) {
    std::span<const double> column(b.data() + j * b.rows(),
                                   static_cast<std::size_t>(b.rows()));
    const std::vector<double> xj = solve(column);
    for (index_t i = 0; i < b.rows(); ++i) x(i, j) = xj[static_cast<std::size_t>(i)];
  }
  return x;
}

RefineResult Solver::solve_with_history(std::span<const double> b) const {
  obs::ScopedSpan span("solve", "solve_with_refinement");
  return solve_with_refinement(*impl_->matrix, *impl_->analysis,
                               *impl_->factor, b,
                               impl_->options.max_refinement_steps,
                               impl_->options.refinement_tolerance);
}

const Analysis& Solver::analysis() const noexcept { return *impl_->analysis; }
const FactorizationTrace& Solver::trace() const noexcept {
  return impl_->trace;
}
double Solver::factor_time() const noexcept { return impl_->factor_time; }

double Solver::solve_time_estimate() const {
  return estimated_solve_seconds(impl_->analysis->symbolic);
}
const TrainedPolicyModel* Solver::model() const noexcept {
  return impl_->model.has_value() ? &*impl_->model : nullptr;
}

}  // namespace mfgpu
