#include "core/solver.hpp"

#include <algorithm>
#include <chrono>

#include "autotune/hybrid.hpp"
#include "multifrontal/parallel.hpp"
#include "multifrontal/solve.hpp"
#include "obs/obs.hpp"
#include "obs/schedule_record.hpp"
#include "ordering/minimum_degree.hpp"
#include "ordering/nested_dissection.hpp"
#include "policy/baseline_hybrid.hpp"

namespace mfgpu {

namespace {

/// Ideal-hybrid executor with its OWN timing oracle. PolicyTimer memoizes
/// through a private simulated device and is not thread-safe, so each
/// parallel GPU worker gets one of these instead of sharing the Solver's.
class OwnedTimerIdealHybrid : public FuExecutor {
 public:
  explicit OwnedTimerIdealHybrid(const ExecutorOptions& options)
      : timer_(std::make_unique<PolicyTimer>(options)),
        inner_(make_ideal_hybrid(*timer_, options)) {}

  FuOutcome execute(FrontBlocks front, FactorContext& ctx) override {
    return inner_.execute(front, ctx);
  }
  std::vector<FuOutcome> execute_batch(std::span<FrontBlocks> fronts,
                                       FactorContext& ctx) override {
    return inner_.execute_batch(fronts, ctx);
  }
  void prepare(index_t max_m, index_t max_k, FactorContext& ctx) override {
    inner_.prepare(max_m, max_k, ctx);
  }
  const char* name() const override { return inner_.name(); }
  std::int64_t fault_count() const override { return inner_.fault_count(); }
  bool quarantined() const override { return inner_.quarantined(); }

 private:
  std::unique_ptr<PolicyTimer> timer_;  // must outlive inner_
  DispatchExecutor inner_;
};

}  // namespace

struct Solver::Impl {
  SparseSpd matrix;
  /// Cached SparseSpd::pattern_fingerprint() of `matrix`, computed once at
  /// analyze time; refactor() compares against it instead of walking the
  /// index arrays.
  std::uint64_t pattern_fp = 0;
  SolverOptions options;
  /// Owned copy of options.coordinates: the phase-split API lets arbitrary
  /// time pass between analyze() and later calls, so the caller's span must
  /// not be retained.
  std::vector<std::array<index_t, 3>> coordinates;
  std::optional<Analysis> analysis;
  /// Lazily built level schedule for the triangular solves — a pattern
  /// artifact like the symbolic factorization, reused across every solve
  /// and refactor. Built on first use (solve() is const).
  mutable std::shared_ptr<const SolveSchedule> solve_schedule;
  std::optional<Factorization> factor;
  FactorizationTrace trace;
  std::optional<TrainedPolicyModel> model;
  std::unique_ptr<Device> device;
  std::unique_ptr<PolicyTimer> timer;
  PoolRunStats pool_stats;
  /// Per-worker memory high-water marks of the last numeric phase.
  std::vector<WorkerMemory> memory;
  double pool_wall = 0.0;
  double factor_time = 0.0;
  double factor_wall = 0.0;
  bool factored = false;
  /// Flight record of the last numeric phase (options.record_schedule).
  obs::ScheduleRecord schedule;
  /// Set when the last numeric phase ran on the simulated cluster.
  std::optional<ClusterStats> cluster_stats;

  Permutation choose_ordering() const;
  /// Level-scheduled solve configuration (threads + cached schedule).
  ParallelSolveOptions solve_options() const;
  std::unique_ptr<FuExecutor> choose_executor();
  void ensure_model();
  WorkerExecutorFactory worker_factory();
  void run_factor();
};

Permutation Solver::Impl::choose_ordering() const {
  switch (options.ordering) {
    case OrderingChoice::Natural:
      return Permutation::identity(matrix.n());
    case OrderingChoice::MinimumDegree:
      return minimum_degree(build_graph(matrix));
    case OrderingChoice::NestedDissection:
      MFGPU_CHECK(static_cast<index_t>(coordinates.size()) == matrix.n(),
                  "Solver: nested dissection needs one coordinate per unknown");
      return nested_dissection(coordinates);
  }
  throw InvalidArgumentError("Solver: invalid ordering choice");
}

void Solver::Impl::ensure_model() {
  if (model.has_value()) return;
  // Train on this matrix's own call distribution (the paper's methodology:
  // learn from the observed timing data).
  obs::ScopedSpan span("solver", "train_policy_model");
  timer = std::make_unique<PolicyTimer>(options.executor);
  const PolicyDataset dataset =
      build_dataset(dims_from_symbolic(analysis->symbolic), *timer);
  model = train_expected_time(dataset);
}

std::unique_ptr<FuExecutor> Solver::Impl::choose_executor() {
  switch (options.mode) {
    case SolverMode::Serial:
      return std::make_unique<PolicyExecutor>(Policy::P1, options.executor);
    case SolverMode::BaselineHybrid:
      return std::make_unique<DispatchExecutor>(
          make_baseline_hybrid(paper_thresholds(), options.executor));
    case SolverMode::ModelHybrid:
      ensure_model();
      return std::make_unique<DispatchExecutor>(
          make_model_hybrid(*model, options.executor));
    case SolverMode::IdealHybrid:
      timer = std::make_unique<PolicyTimer>(options.executor);
      return std::make_unique<DispatchExecutor>(
          make_ideal_hybrid(*timer, options.executor));
  }
  throw InvalidArgumentError("Solver: invalid mode");
}

/// Per-worker executor construction for the parallel numeric phase. CPU
/// workers always run P1 in double; GPU workers run the mode's dispatcher
/// against their private simulated device.
WorkerExecutorFactory Solver::Impl::worker_factory() {
  const ExecutorOptions executor_options = options.executor;
  switch (options.mode) {
    case SolverMode::Serial:
      return [executor_options](const WorkerSpec&, int) {
        return std::unique_ptr<FuExecutor>(
            std::make_unique<PolicyExecutor>(Policy::P1, executor_options));
      };
    case SolverMode::BaselineHybrid:
      return {};  // factorize_parallel's default is exactly P_BH on GPU, P1 on CPU
    case SolverMode::ModelHybrid:
      ensure_model();  // train once, serially; workers share the const model
      return [this, executor_options](const WorkerSpec& spec,
                                      int) -> std::unique_ptr<FuExecutor> {
        if (!spec.has_gpu) {
          return std::make_unique<PolicyExecutor>(Policy::P1, executor_options);
        }
        return std::make_unique<DispatchExecutor>(
            make_model_hybrid(*model, executor_options));
      };
    case SolverMode::IdealHybrid:
      return [executor_options](const WorkerSpec& spec,
                                int) -> std::unique_ptr<FuExecutor> {
        if (!spec.has_gpu) {
          return std::make_unique<PolicyExecutor>(Policy::P1, executor_options);
        }
        return std::make_unique<OwnedTimerIdealHybrid>(executor_options);
      };
  }
  throw InvalidArgumentError("Solver: invalid mode");
}

void Solver::Impl::run_factor() {
  const bool parallel = !options.workers.empty() || options.num_threads > 1;
  const auto wall_t0 = std::chrono::steady_clock::now();
  obs::ScheduleRecorder recorder;
  obs::ScheduleRecorder* rec =
      options.record_schedule ? &recorder : nullptr;
  FactorizeResult result;
  cluster_stats.reset();
  if (options.cluster.enabled()) {
    ClusterFactorizeOptions cluster_options;
    cluster_options.cluster = options.cluster;
    cluster_options.executor = options.executor;
    cluster_options.device = options.device;
    cluster_options.recorder = rec;
    ClusterStats stats;
    obs::ScopedSpan span("solver", "numeric_factorization");
    result = factorize_cluster(*analysis, cluster_options, worker_factory(),
                               &stats);
    cluster_stats = stats;
  } else if (parallel) {
    ParallelFactorizeOptions parallel_options;
    parallel_options.num_threads = options.num_threads;
    parallel_options.workers = options.workers;
    parallel_options.deterministic_reduction = options.deterministic_reduction;
    parallel_options.numeric.batching = options.batching;
    parallel_options.executor = options.executor;
    parallel_options.device = options.device;
    parallel_options.recorder = rec;
    obs::ScopedSpan span("solver", "numeric_factorization");
    result = factorize_parallel(*analysis, parallel_options, worker_factory());
  } else {
    const auto executor = choose_executor();
    FactorContext ctx;
    if (options.mode != SolverMode::Serial) {
      Device::Options device_options = options.device;
      device_options.numeric = true;
      device = std::make_unique<Device>(device_options);
      ctx.device = device.get();
    }
    FactorizeOptions factorize_options;
    factorize_options.batching = options.batching;
    factorize_options.recorder = rec;
    obs::ScopedSpan span("solver", "numeric_factorization", &ctx.host_clock);
    result = factorize(*analysis, *executor, ctx, factorize_options);
  }
  if (rec != nullptr) schedule = recorder.take();
  factor = std::move(result.factor);
  trace = std::move(result.trace);
  pool_stats = std::move(result.pool_stats);
  memory = std::move(result.memory);
  pool_wall = result.pool_wall_seconds;
  factor_time = trace.total_time;
  factor_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0)
          .count();
  factored = true;
}

PatternAnalysis::PatternAnalysis(std::uint64_t fingerprint_in,
                                 Permutation perm_in,
                                 SymbolicFactor symbolic_in,
                                 AnalyzeOptions analysis_in)
    : fingerprint(fingerprint_in),
      perm(std::move(perm_in)),
      symbolic(std::move(symbolic_in)),
      analysis_options(analysis_in) {
  std::size_t bytes = sizeof(PatternAnalysis);
  bytes += 2 * static_cast<std::size_t>(perm.n()) * sizeof(index_t);  // perm
  bytes += 2 * static_cast<std::size_t>(symbolic.n()) * sizeof(index_t);
  for (const SupernodeInfo& sn : symbolic.supernodes()) {
    bytes += sizeof(SupernodeInfo) + sn.update_rows.size() * sizeof(index_t);
  }
  approx_bytes = bytes;
}

Solver::Solver() : impl_(std::make_unique<Impl>()) {}

Solver Solver::analyze(const SparseSpd& a, const SolverOptions& options) {
  Solver solver;
  Impl& impl = *solver.impl_;
  impl.matrix = a;
  impl.pattern_fp = a.pattern_fingerprint();
  impl.options = options;
  impl.coordinates.assign(options.coordinates.begin(),
                          options.coordinates.end());
  impl.options.coordinates = {};  // always read the owned copy
  obs::ScopedSpan span("solver", "analyze");
  span.set_arg(0, "n", a.n());
  impl.analysis =
      mfgpu::analyze(impl.matrix, impl.choose_ordering(), options.analysis);
  return solver;
}

Solver Solver::analyze(const SparseSpd& a,
                       std::shared_ptr<const PatternAnalysis> shared,
                       const SolverOptions& options) {
  MFGPU_CHECK(shared != nullptr, "Solver::analyze: null shared analysis");
  const std::uint64_t fingerprint = a.pattern_fingerprint();
  if (fingerprint != shared->fingerprint) {
    throw InvalidArgumentError(
        "Solver::analyze: matrix pattern fingerprint differs from the "
        "shared analysis");
  }
  Solver solver;
  Impl& impl = *solver.impl_;
  impl.matrix = a;
  impl.pattern_fp = fingerprint;
  impl.options = options;
  impl.options.coordinates = {};  // the ordering is already decided
  impl.options.analysis = shared->analysis_options;
  obs::ScopedSpan span("solver", "analyze_shared");
  span.set_arg(0, "n", a.n());
  // Adoption copies the immutable structures and permutes the new values —
  // no ordering / etree / symbolic recomputation.
  impl.analysis.emplace(
      Analysis{shared->perm, a.permuted(shared->perm.new_of_old()),
               shared->symbolic});
  return solver;
}

std::shared_ptr<const PatternAnalysis> Solver::share_analysis() const {
  const Impl& impl = *impl_;
  MFGPU_CHECK(impl.analysis.has_value(),
              "Solver::share_analysis: not analyzed");
  return std::make_shared<const PatternAnalysis>(
      impl.pattern_fp, impl.analysis->perm, impl.analysis->symbolic,
      impl.options.analysis);
}

std::uint64_t Solver::pattern_fingerprint() const noexcept {
  return impl_->pattern_fp;
}

Solver::Solver(const SparseSpd& a, const SolverOptions& options)
    : Solver(analyze(a, options)) {
  impl_->run_factor();
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

void Solver::factor() { impl_->run_factor(); }

void Solver::refactor(const SparseSpd& a) {
  Impl& impl = *impl_;
  if (a.n() != impl.matrix.n()) {
    throw InvalidArgumentError("Solver::refactor: dimension mismatch");
  }
  // The pattern fingerprint covers (n, col_ptr, row_idx), so one hash pass
  // replaces the old element-wise index comparison.
  if (a.pattern_fingerprint() != impl.pattern_fp) {
    throw InvalidArgumentError(
        "Solver::refactor: sparsity pattern differs from the analyzed matrix");
  }
  impl.matrix = a;
  // Same pattern => the composed permutation and symbolic structure are
  // still exact; only the permuted values need recomputing.
  impl.analysis->permuted =
      impl.matrix.permuted(impl.analysis->perm.new_of_old());
  impl.factored = false;
  impl.run_factor();
}

bool Solver::factored() const noexcept { return impl_->factored; }

std::vector<double> Solver::solve(std::span<const double> b) const {
  return solve_with_history(b).x;
}

ParallelSolveOptions Solver::Impl::solve_options() const {
  if (solve_schedule == nullptr) {
    solve_schedule = std::make_shared<const SolveSchedule>(
        build_solve_schedule(analysis->symbolic));
  }
  ParallelSolveOptions opts;
  opts.threads = std::max(1, options.solve_threads);
  opts.schedule = solve_schedule.get();
  return opts;
}

Matrix<double> Solver::solve(const Matrix<double>& b) const {
  if (!impl_->factored) {
    throw InvalidStateError(
        "Solver::solve: factor() has not been called (analyze-only handle)");
  }
  if (b.rows() != impl_->matrix.n()) {
    throw InvalidArgumentError(
        "Solver::solve: rhs has " + std::to_string(b.rows()) +
        " rows, matrix dimension is " + std::to_string(impl_->matrix.n()));
  }
  if (b.cols() == 0) return Matrix<double>(b.rows(), 0);
  // One blocked refined pass over the whole block: each factor panel is
  // streamed once per refinement step instead of once per column, and the
  // level-scheduled sweeps keep every column bitwise identical to a
  // per-column solve(b.col(j)).
  obs::ScopedSpan span("solve", "blocked_solve_with_refinement");
  span.set_arg(0, "rhs", b.cols());
  BlockRefineResult refined = solve_with_refinement(
      impl_->matrix, *impl_->analysis, *impl_->factor, b,
      impl_->options.max_refinement_steps,
      impl_->options.refinement_tolerance, impl_->solve_options());
  return std::move(refined.x);
}

RefineResult Solver::solve_with_history(std::span<const double> b) const {
  if (!impl_->factored) {
    throw InvalidStateError(
        "Solver::solve: factor() has not been called (analyze-only handle)");
  }
  if (static_cast<index_t>(b.size()) != impl_->matrix.n()) {
    throw InvalidArgumentError(
        "Solver::solve: rhs has " + std::to_string(b.size()) +
        " entries, matrix dimension is " + std::to_string(impl_->matrix.n()));
  }
  obs::ScopedSpan span("solve", "solve_with_refinement");
  return solve_with_refinement(impl_->matrix, *impl_->analysis,
                               *impl_->factor, b,
                               impl_->options.max_refinement_steps,
                               impl_->options.refinement_tolerance,
                               impl_->solve_options());
}

const Analysis& Solver::analysis() const noexcept { return *impl_->analysis; }
const FactorizationTrace& Solver::trace() const noexcept {
  return impl_->trace;
}
double Solver::factor_time() const noexcept { return impl_->factor_time; }
double Solver::factor_wall_seconds() const noexcept {
  return impl_->factor_wall;
}

double Solver::solve_time_estimate() const {
  return estimated_solve_seconds(impl_->analysis->symbolic);
}
const TrainedPolicyModel* Solver::model() const noexcept {
  return impl_->model.has_value() ? &*impl_->model : nullptr;
}

obs::ProfileReport Solver::profile_report() const {
  if (!impl_->factored) {
    throw InvalidStateError("Solver::profile_report: not factored");
  }
  obs::ProfileReportInputs inputs;
  inputs.trace = &impl_->trace;
  inputs.supernodes = impl_->analysis->symbolic.supernodes();
  if (impl_->pool_stats.num_workers() > 0) {
    inputs.pool_stats = &impl_->pool_stats;
    inputs.pool_wall_seconds = impl_->pool_wall;
  }
  inputs.executor_options = impl_->options.executor;
  inputs.memory = impl_->memory;
  return obs::build_profile_report(inputs);
}

bool Solver::schedule_recorded() const noexcept {
  return impl_ != nullptr && impl_->factored && !impl_->schedule.empty();
}

const obs::ScheduleRecord& Solver::schedule() const {
  if (!impl_->factored) {
    throw InvalidStateError("Solver::schedule: not factored");
  }
  if (impl_->schedule.empty()) {
    throw InvalidStateError(
        "Solver::schedule: factor() ran without record_schedule");
  }
  return impl_->schedule;
}

obs::CriticalPathReport Solver::schedule_report() const {
  obs::CriticalPathReport report = obs::analyze_critical_path(schedule());
  obs::emit_critical_path_metrics(report);
  return report;
}

const std::optional<ClusterStats>& Solver::cluster_stats() const noexcept {
  return impl_->cluster_stats;
}

obs::WhatIfResult Solver::schedule_whatif(const obs::WhatIfKnobs& knobs) const {
  const obs::ScheduleRecord& record = schedule();
  std::unique_ptr<PolicyTimer> timer;
  if (knobs.force_policy >= 0 || knobs.batching == 0) {
    timer = std::make_unique<PolicyTimer>(impl_->options.executor);
  }
  obs::WhatIfResult result = obs::whatif_replay(record, knobs, timer.get());
  obs::emit_whatif_metrics(result);
  return result;
}

}  // namespace mfgpu
