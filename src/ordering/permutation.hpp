// Fill-reducing permutations and their bookkeeping.
//
// Convention used across mfgpu: `new_of_old[i]` is the position of original
// unknown i in the permuted matrix, and `old_of_new[p]` is its inverse. The
// factorization always works on B = P A P^T.
#pragma once

#include <span>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

class Permutation {
 public:
  Permutation() = default;
  /// Construct from the old->new map; the inverse is derived and validated.
  explicit Permutation(std::vector<index_t> new_of_old);

  static Permutation identity(index_t n);
  /// Construct from an elimination order: order[p] = old index eliminated
  /// at step p (i.e. this is old_of_new).
  static Permutation from_elimination_order(std::vector<index_t> old_of_new);

  index_t n() const noexcept { return static_cast<index_t>(new_of_old_.size()); }
  std::span<const index_t> new_of_old() const noexcept { return new_of_old_; }
  std::span<const index_t> old_of_new() const noexcept { return old_of_new_; }

  /// Permute a vector of unknowns: out[new] = in[old].
  void apply(std::span<const double> in, std::span<double> out) const;
  /// Inverse permute: out[old] = in[new].
  void apply_inverse(std::span<const double> in, std::span<double> out) const;

 private:
  void build_inverse();
  std::vector<index_t> new_of_old_;
  std::vector<index_t> old_of_new_;
};

}  // namespace mfgpu
