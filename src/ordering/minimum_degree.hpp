// Quotient-graph minimum-degree ordering with element absorption and
// supervariable (indistinguishable-node) merging.
//
// This is the general-purpose fill-reducing ordering used when no geometry
// is available (the paper's WSMP substrate uses its own MD/ND orderings).
// The implementation maintains the classical quotient graph: eliminated
// vertices become *elements*; a variable's structure is the union of its
// remaining variable neighbours and the variables of its adjacent elements.
// External degrees are recomputed exactly (in supervariable weights) for
// the variables touched by each elimination; elements reachable from the
// pivot are absorbed; and variables with identical structure are merged
// into supervariables — which both accelerates the ordering and emits dof
// blocks (e.g. the 3 unknowns of an elasticity node) consecutively, feeding
// larger supernodes to the factorization.
#pragma once

#include "ordering/permutation.hpp"
#include "sparse/csc.hpp"

namespace mfgpu {

struct MinimumDegreeOptions {
  /// Merge indistinguishable variables (disable for the ablation bench).
  bool supervariables = true;
};

Permutation minimum_degree(const SymmetricGraph& g,
                           const MinimumDegreeOptions& options = {});

}  // namespace mfgpu
