#include "ordering/rcm.hpp"

#include <algorithm>
#include <queue>

#include "obs/trace_session.hpp"

namespace mfgpu {
namespace {

/// BFS from `root`; returns the visit order and the last level's vertices.
struct BfsResult {
  std::vector<index_t> order;
  index_t eccentricity = 0;
  index_t last_level_min_degree_vertex = -1;
};

BfsResult bfs_levels(const SymmetricGraph& g, index_t root,
                     std::vector<index_t>& level,
                     std::vector<char>& visited_scratch) {
  BfsResult result;
  std::queue<index_t> queue;
  queue.push(root);
  visited_scratch[static_cast<std::size_t>(root)] = 1;
  level[static_cast<std::size_t>(root)] = 0;
  index_t best_degree = -1;
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop();
    result.order.push_back(v);
    const index_t lv = level[static_cast<std::size_t>(v)];
    if (lv > result.eccentricity) {
      result.eccentricity = lv;
      best_degree = -1;
    }
    if (lv == result.eccentricity) {
      const auto deg = static_cast<index_t>(g.neighbors(v).size());
      if (best_degree < 0 || deg < best_degree) {
        best_degree = deg;
        result.last_level_min_degree_vertex = v;
      }
    }
    for (index_t u : g.neighbors(v)) {
      if (!visited_scratch[static_cast<std::size_t>(u)]) {
        visited_scratch[static_cast<std::size_t>(u)] = 1;
        level[static_cast<std::size_t>(u)] = lv + 1;
        queue.push(u);
      }
    }
  }
  for (index_t v : result.order) visited_scratch[static_cast<std::size_t>(v)] = 0;
  return result;
}

/// George-Liu style pseudo-peripheral vertex search.
index_t pseudo_peripheral(const SymmetricGraph& g, index_t start,
                          std::vector<index_t>& level,
                          std::vector<char>& visited) {
  index_t root = start;
  BfsResult bfs = bfs_levels(g, root, level, visited);
  for (int iter = 0; iter < 8; ++iter) {
    const index_t candidate = bfs.last_level_min_degree_vertex;
    if (candidate < 0 || candidate == root) break;
    BfsResult next = bfs_levels(g, candidate, level, visited);
    if (next.eccentricity <= bfs.eccentricity) break;
    root = candidate;
    bfs = std::move(next);
  }
  return root;
}

}  // namespace

Permutation reverse_cuthill_mckee(const SymmetricGraph& g) {
  obs::ScopedSpan span("ordering", "reverse_cuthill_mckee");
  span.set_arg(0, "n", g.n);
  const index_t n = g.n;
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);

  for (index_t seed = 0; seed < n; ++seed) {
    if (placed[static_cast<std::size_t>(seed)]) continue;
    const index_t root = pseudo_peripheral(g, seed, level, visited);
    // Cuthill-McKee BFS with neighbours sorted by increasing degree.
    std::queue<index_t> queue;
    queue.push(root);
    placed[static_cast<std::size_t>(root)] = 1;
    std::vector<index_t> buffer;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop();
      order.push_back(v);
      buffer.clear();
      for (index_t u : g.neighbors(v)) {
        if (!placed[static_cast<std::size_t>(u)]) {
          placed[static_cast<std::size_t>(u)] = 1;
          buffer.push_back(u);
        }
      }
      std::sort(buffer.begin(), buffer.end(), [&](index_t a, index_t b) {
        return g.neighbors(a).size() < g.neighbors(b).size();
      });
      for (index_t u : buffer) queue.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return Permutation::from_elimination_order(std::move(order));
}

}  // namespace mfgpu
