#include "ordering/permutation.hpp"

#include <numeric>

namespace mfgpu {

Permutation::Permutation(std::vector<index_t> new_of_old)
    : new_of_old_(std::move(new_of_old)) {
  build_inverse();
}

Permutation Permutation::identity(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return Permutation(std::move(p));
}

Permutation Permutation::from_elimination_order(std::vector<index_t> old_of_new) {
  const index_t n = static_cast<index_t>(old_of_new.size());
  std::vector<index_t> new_of_old(static_cast<std::size_t>(n), -1);
  for (index_t p = 0; p < n; ++p) {
    const index_t old = old_of_new[static_cast<std::size_t>(p)];
    MFGPU_CHECK(old >= 0 && old < n, "elimination order: index out of range");
    MFGPU_CHECK(new_of_old[static_cast<std::size_t>(old)] == -1,
                "elimination order: duplicate index");
    new_of_old[static_cast<std::size_t>(old)] = p;
  }
  return Permutation(std::move(new_of_old));
}

void Permutation::build_inverse() {
  const index_t n = static_cast<index_t>(new_of_old_.size());
  old_of_new_.assign(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    const index_t p = new_of_old_[static_cast<std::size_t>(i)];
    MFGPU_CHECK(p >= 0 && p < n, "permutation: value out of range");
    MFGPU_CHECK(old_of_new_[static_cast<std::size_t>(p)] == -1,
                "permutation: not a bijection");
    old_of_new_[static_cast<std::size_t>(p)] = i;
  }
}

void Permutation::apply(std::span<const double> in,
                        std::span<double> out) const {
  MFGPU_CHECK(static_cast<index_t>(in.size()) == n() && in.size() == out.size(),
              "Permutation::apply: size mismatch");
  for (index_t i = 0; i < n(); ++i) {
    out[static_cast<std::size_t>(new_of_old_[static_cast<std::size_t>(i)])] =
        in[static_cast<std::size_t>(i)];
  }
}

void Permutation::apply_inverse(std::span<const double> in,
                                std::span<double> out) const {
  MFGPU_CHECK(static_cast<index_t>(in.size()) == n() && in.size() == out.size(),
              "Permutation::apply_inverse: size mismatch");
  for (index_t i = 0; i < n(); ++i) {
    out[static_cast<std::size_t>(old_of_new_[static_cast<std::size_t>(i)])] =
        in[static_cast<std::size_t>(i)];
  }
}

}  // namespace mfgpu
