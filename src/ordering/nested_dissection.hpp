// Geometric nested dissection for grid-generated problems.
//
// Recursively bisects the unknowns along the longest grid axis; the middle
// plane becomes a separator ordered *after* both halves. This is the
// ordering that produces the paper's characteristic elimination trees for
// 3-D structural problems: many small leaf fronts and a few huge separator
// fronts near the root (where policies P3/P4 win).
#pragma once

#include <array>
#include <span>

#include "ordering/permutation.hpp"

namespace mfgpu {

struct NestedDissectionOptions {
  /// Subsets at or below this size are ordered locally without dissection.
  index_t leaf_size = 48;
};

/// `coords[i]` is the grid coordinate of unknown i (unknowns sharing a node,
/// e.g. the 3 dof of an elasticity node, share coordinates and are kept
/// adjacent in the ordering, which helps supernode formation).
Permutation nested_dissection(std::span<const std::array<index_t, 3>> coords,
                              const NestedDissectionOptions& options = {});

}  // namespace mfgpu
