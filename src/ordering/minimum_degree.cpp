#include "ordering/minimum_degree.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/trace_session.hpp"

namespace mfgpu {
namespace {

/// Lazy min-heap entry: (degree at push time, vertex). Stale entries are
/// skipped at pop time by comparing against the current degree.
using HeapEntry = std::pair<index_t, index_t>;

class QuotientGraph {
 public:
  explicit QuotientGraph(const SymmetricGraph& g)
      : n_(g.n),
        adj_vars_(static_cast<std::size_t>(g.n)),
        adj_elems_(static_cast<std::size_t>(g.n)),
        elem_vars_(static_cast<std::size_t>(g.n)),
        degree_(static_cast<std::size_t>(g.n)),
        weight_(static_cast<std::size_t>(g.n), 1),
        members_(static_cast<std::size_t>(g.n)),
        eliminated_(static_cast<std::size_t>(g.n), 0),
        absorbed_(static_cast<std::size_t>(g.n), 0),
        marker_(static_cast<std::size_t>(g.n), 0) {
    for (index_t v = 0; v < n_; ++v) {
      const auto nbrs = g.neighbors(v);
      adj_vars_[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
      degree_[static_cast<std::size_t>(v)] = static_cast<index_t>(nbrs.size());
      members_[static_cast<std::size_t>(v)].push_back(v);
    }
  }

  index_t degree(index_t v) const { return degree_[static_cast<std::size_t>(v)]; }
  index_t weight(index_t v) const { return weight_[static_cast<std::size_t>(v)]; }
  bool gone(index_t v) const {
    return eliminated_[static_cast<std::size_t>(v)] != 0;
  }
  /// The original vertices this supervariable represents (itself included).
  const std::vector<index_t>& members(index_t v) const {
    return members_[static_cast<std::size_t>(v)];
  }

  /// Eliminate pivot `p`; returns the surviving variables whose structure
  /// changed (the pivot structure Lp).
  const std::vector<index_t>& eliminate(index_t p) {
    eliminated_[static_cast<std::size_t>(p)] = 1;

    // Pivot structure Lp: remaining variable neighbours of p plus the
    // variables of every adjacent element (those elements get absorbed).
    ++stamp_;
    marker_[static_cast<std::size_t>(p)] = stamp_;
    pivot_structure_.clear();
    auto absorb_var = [&](index_t u) {
      if (gone(u)) return;
      if (marker_[static_cast<std::size_t>(u)] != stamp_) {
        marker_[static_cast<std::size_t>(u)] = stamp_;
        pivot_structure_.push_back(u);
      }
    };
    for (index_t u : adj_vars_[static_cast<std::size_t>(p)]) absorb_var(u);
    for (index_t e : adj_elems_[static_cast<std::size_t>(p)]) {
      for (index_t u : elem_vars_[static_cast<std::size_t>(e)]) absorb_var(u);
      elem_vars_[static_cast<std::size_t>(e)].clear();  // absorbed into p
      elem_vars_[static_cast<std::size_t>(e)].shrink_to_fit();
      absorbed_[static_cast<std::size_t>(e)] = 1;
    }
    elem_vars_[static_cast<std::size_t>(p)] = pivot_structure_;

    // Update each variable in Lp: its variable list drops members of Lp and
    // p itself (now represented by element p); its element list drops the
    // absorbed elements and gains p.
    for (index_t u : pivot_structure_) {
      auto& vars = adj_vars_[static_cast<std::size_t>(u)];
      std::erase_if(vars, [&](index_t w) {
        return w == p || marker_[static_cast<std::size_t>(w)] == stamp_ ||
               gone(w);
      });
      auto& elems = adj_elems_[static_cast<std::size_t>(u)];
      std::erase_if(elems, [&](index_t e) {
        return absorbed_[static_cast<std::size_t>(e)] != 0;
      });
      elems.push_back(p);
    }
    return pivot_structure_;
  }

  /// Exact weighted external degree of `u`.
  index_t compute_degree(index_t u) {
    ++stamp_;
    marker_[static_cast<std::size_t>(u)] = stamp_;
    index_t deg = 0;
    auto count = [&](index_t w) {
      if (!gone(w) && marker_[static_cast<std::size_t>(w)] != stamp_) {
        marker_[static_cast<std::size_t>(w)] = stamp_;
        deg += weight_[static_cast<std::size_t>(w)];
      }
    };
    for (index_t w : adj_vars_[static_cast<std::size_t>(u)]) count(w);
    for (index_t e : adj_elems_[static_cast<std::size_t>(u)]) {
      for (index_t w : elem_vars_[static_cast<std::size_t>(e)]) count(w);
    }
    degree_[static_cast<std::size_t>(u)] = deg;
    return deg;
  }

  /// Merge indistinguishable variables within the pivot structure; merged
  /// variables disappear from the graph (their neighbour sets are identical
  /// to the survivor's, so no list surgery is needed). Returns the
  /// survivors of `candidates`.
  std::vector<index_t> merge_indistinguishable(
      const std::vector<index_t>& candidates) {
    // Bucket by a cheap structure signature, then confirm exactly.
    std::vector<std::pair<std::uint64_t, index_t>> keyed;
    keyed.reserve(candidates.size());
    for (index_t u : candidates) {
      if (gone(u)) continue;
      keyed.emplace_back(signature(u), u);
    }
    std::sort(keyed.begin(), keyed.end());

    std::vector<index_t> survivors;
    survivors.reserve(keyed.size());
    for (std::size_t i = 0; i < keyed.size();) {
      std::size_t j = i;
      while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
      // Pairwise-confirm within the signature bucket.
      for (std::size_t a = i; a < j; ++a) {
        const index_t u = keyed[a].second;
        if (gone(u)) continue;
        for (std::size_t b = a + 1; b < j; ++b) {
          const index_t w = keyed[b].second;
          if (gone(w)) continue;
          if (structures_equal(u, w)) merge_into(u, w);
        }
        survivors.push_back(u);
      }
      i = j;
    }
    return survivors;
  }

 private:
  std::uint64_t signature(index_t u) {
    std::uint64_t h = 0;
    for (index_t w : adj_vars_[static_cast<std::size_t>(u)]) {
      if (!gone(w)) h += 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1);
    }
    for (index_t e : adj_elems_[static_cast<std::size_t>(u)]) {
      h ^= 0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(e + 1);
    }
    return h;
  }

  /// Exact indistinguishability: identical element lists and identical
  /// variable neighbour sets modulo {u, w} themselves.
  bool structures_equal(index_t u, index_t w) {
    auto sorted_elems = [&](index_t v) {
      std::vector<index_t> e = adj_elems_[static_cast<std::size_t>(v)];
      std::sort(e.begin(), e.end());
      e.erase(std::unique(e.begin(), e.end()), e.end());
      return e;
    };
    if (sorted_elems(u) != sorted_elems(w)) return false;
    auto sorted_vars = [&](index_t v, index_t other) {
      std::vector<index_t> vars;
      for (index_t x : adj_vars_[static_cast<std::size_t>(v)]) {
        if (!gone(x) && x != other && x != v) vars.push_back(x);
      }
      std::sort(vars.begin(), vars.end());
      vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
      return vars;
    };
    return sorted_vars(u, w) == sorted_vars(w, u);
  }

  void merge_into(index_t survivor, index_t merged) {
    weight_[static_cast<std::size_t>(survivor)] +=
        weight_[static_cast<std::size_t>(merged)];
    auto& into = members_[static_cast<std::size_t>(survivor)];
    auto& from = members_[static_cast<std::size_t>(merged)];
    into.insert(into.end(), from.begin(), from.end());
    from.clear();
    from.shrink_to_fit();
    eliminated_[static_cast<std::size_t>(merged)] = 2;  // merged, not pivot
    adj_vars_[static_cast<std::size_t>(merged)].clear();
    adj_elems_[static_cast<std::size_t>(merged)].clear();
  }

  index_t n_;
  std::vector<std::vector<index_t>> adj_vars_;
  std::vector<std::vector<index_t>> adj_elems_;
  std::vector<std::vector<index_t>> elem_vars_;
  std::vector<index_t> degree_;
  std::vector<index_t> weight_;
  std::vector<std::vector<index_t>> members_;
  std::vector<char> eliminated_;
  std::vector<char> absorbed_;
  std::vector<index_t> marker_;
  index_t stamp_ = 0;
  std::vector<index_t> pivot_structure_;
};

}  // namespace

Permutation minimum_degree(const SymmetricGraph& g,
                           const MinimumDegreeOptions& options) {
  obs::ScopedSpan span("ordering", "minimum_degree");
  span.set_arg(0, "n", g.n);
  const index_t n = g.n;
  QuotientGraph qg(g);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (index_t v = 0; v < n; ++v) heap.emplace(qg.degree(v), v);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (qg.gone(v) || deg != qg.degree(v)) continue;  // stale entry
    // Emit the whole supervariable consecutively (its members share the
    // factor-column structure, so they seed one supernode).
    const auto& members = qg.members(v);
    order.insert(order.end(), members.begin(), members.end());

    std::vector<index_t> touched = qg.eliminate(v);
    if (options.supervariables) {
      touched = qg.merge_indistinguishable(touched);
    }
    for (index_t u : touched) {
      if (!qg.gone(u)) heap.emplace(qg.compute_degree(u), u);
    }
  }
  MFGPU_CHECK(static_cast<index_t>(order.size()) == n,
              "minimum_degree: not all vertices eliminated");
  return Permutation::from_elimination_order(std::move(order));
}

}  // namespace mfgpu
