#include "ordering/nested_dissection.hpp"

#include <algorithm>
#include <vector>

#include "obs/trace_session.hpp"

namespace mfgpu {
namespace {

struct Job {
  index_t begin;  ///< range into the shared work vector
  index_t end;
};

}  // namespace

Permutation nested_dissection(std::span<const std::array<index_t, 3>> coords,
                              const NestedDissectionOptions& options) {
  const index_t n = static_cast<index_t>(coords.size());
  MFGPU_CHECK(options.leaf_size > 0, "nested_dissection: leaf_size positive");
  obs::ScopedSpan span("ordering", "nested_dissection");
  span.set_arg(0, "n", n);

  std::vector<index_t> work(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) work[static_cast<std::size_t>(i)] = i;

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));

  // Explicit recursion: process(range) emits left, right, then separator.
  // We implement it with a call stack of (range, phase) to avoid deep
  // recursion on large grids.
  struct Frame {
    index_t begin, end;
    index_t mid_lo = -1, mid_hi = -1;  // separator slice [mid_lo, mid_hi)
    int phase = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({0, n, -1, -1, 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.phase == 0) {
      const index_t size = frame.end - frame.begin;
      if (size <= options.leaf_size) {
        // Leaf: keep the (node-grouped) natural order.
        for (index_t t = frame.begin; t < frame.end; ++t) {
          order.push_back(work[static_cast<std::size_t>(t)]);
        }
        stack.pop_back();
        continue;
      }
      // Pick the axis with the largest coordinate spread.
      std::array<index_t, 3> lo = {coords[static_cast<std::size_t>(
                                       work[static_cast<std::size_t>(frame.begin)])][0],
                                   0, 0};
      std::array<index_t, 3> hi = lo;
      for (int a = 0; a < 3; ++a) {
        lo[static_cast<std::size_t>(a)] =
            coords[static_cast<std::size_t>(work[static_cast<std::size_t>(frame.begin)])]
                  [static_cast<std::size_t>(a)];
        hi[static_cast<std::size_t>(a)] = lo[static_cast<std::size_t>(a)];
      }
      for (index_t t = frame.begin; t < frame.end; ++t) {
        const auto& c = coords[static_cast<std::size_t>(work[static_cast<std::size_t>(t)])];
        for (int a = 0; a < 3; ++a) {
          lo[static_cast<std::size_t>(a)] = std::min(lo[static_cast<std::size_t>(a)], c[static_cast<std::size_t>(a)]);
          hi[static_cast<std::size_t>(a)] = std::max(hi[static_cast<std::size_t>(a)], c[static_cast<std::size_t>(a)]);
        }
      }
      int axis = 0;
      index_t spread = hi[0] - lo[0];
      for (int a = 1; a < 3; ++a) {
        if (hi[static_cast<std::size_t>(a)] - lo[static_cast<std::size_t>(a)] > spread) {
          spread = hi[static_cast<std::size_t>(a)] - lo[static_cast<std::size_t>(a)];
          axis = a;
        }
      }
      if (spread == 0) {
        // Degenerate (all unknowns share one point): emit as a leaf.
        for (index_t t = frame.begin; t < frame.end; ++t) {
          order.push_back(work[static_cast<std::size_t>(t)]);
        }
        stack.pop_back();
        continue;
      }
      const index_t cut = lo[static_cast<std::size_t>(axis)] + spread / 2;

      // Partition into [begin, mid_lo): coord < cut, [mid_lo, sep_begin):
      // coord > cut, and [sep_begin, end): coord == cut (the separator
      // plane, ordered after both halves). Stable so node dof groups stay
      // adjacent.
      auto klass = [&](index_t v) {
        const index_t c =
            coords[static_cast<std::size_t>(v)][static_cast<std::size_t>(axis)];
        return (c < cut) ? 0 : (c == cut ? 2 : 1);
      };
      std::stable_sort(work.begin() + frame.begin, work.begin() + frame.end,
                       [&](index_t a, index_t b) { return klass(a) < klass(b); });
      index_t mid_lo = frame.begin;
      while (mid_lo < frame.end &&
             klass(work[static_cast<std::size_t>(mid_lo)]) == 0) {
        ++mid_lo;
      }
      index_t sep_begin = mid_lo;
      while (sep_begin < frame.end &&
             klass(work[static_cast<std::size_t>(sep_begin)]) == 1) {
        ++sep_begin;
      }
      frame.mid_lo = mid_lo;
      frame.mid_hi = sep_begin;
      frame.phase = 1;
      // Recurse into the two halves; separator emitted in phase 1.
      const Frame left{frame.begin, mid_lo, -1, -1, 0};
      const Frame right{mid_lo, sep_begin, -1, -1, 0};
      stack.push_back(right);
      stack.push_back(left);
      continue;
    }
    // phase 1: halves done; emit the separator slice [mid_hi, end) and pop.
    for (index_t t = frame.mid_hi; t < frame.end; ++t) {
      order.push_back(work[static_cast<std::size_t>(t)]);
    }
    stack.pop_back();
  }

  MFGPU_CHECK(static_cast<index_t>(order.size()) == n,
              "nested_dissection: lost unknowns");
  return Permutation::from_elimination_order(std::move(order));
}

}  // namespace mfgpu
