// Reverse Cuthill-McKee ordering (bandwidth reduction). Included both as a
// baseline for the ordering-quality ablation and as a cheap deterministic
// ordering for tests.
#pragma once

#include "ordering/permutation.hpp"
#include "sparse/csc.hpp"

namespace mfgpu {

/// RCM starting from a pseudo-peripheral vertex of each connected component.
Permutation reverse_cuthill_mckee(const SymmetricGraph& g);

}  // namespace mfgpu
