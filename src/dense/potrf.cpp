#include "dense/potrf.hpp"

#include <cmath>

namespace mfgpu {

template <typename T>
void potrf_unblocked(MatrixView<T> a, index_t column_offset) {
  MFGPU_CHECK(a.rows() == a.cols(), "potrf: matrix must be square");
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    T diag = a(j, j);
    for (index_t p = 0; p < j; ++p) diag -= a(j, p) * a(j, p);
    if (!(diag > T{})) {
      throw NotPositiveDefiniteError(column_offset + j,
                                     static_cast<double>(diag));
    }
    const T pivot = std::sqrt(diag);
    a(j, j) = pivot;
    const T inv = T{1} / pivot;
    for (index_t i = j + 1; i < n; ++i) {
      T value = a(i, j);
      for (index_t p = 0; p < j; ++p) value -= a(i, p) * a(j, p);
      a(i, j) = value * inv;
    }
  }
}

template <typename T>
void potrf(MatrixView<T> a, index_t block, index_t column_offset) {
  MFGPU_CHECK(a.rows() == a.cols(), "potrf: matrix must be square");
  MFGPU_CHECK(block > 0, "potrf: block must be positive");
  const index_t n = a.rows();
  for (index_t j0 = 0; j0 < n; j0 += block) {
    const index_t jb = std::min(block, n - j0);
    auto pivot_block = a.block(j0, j0, jb, jb);
    potrf_unblocked(pivot_block, column_offset + j0);

    const index_t rest = n - j0 - jb;
    if (rest == 0) continue;
    auto below = a.block(j0 + jb, j0, rest, jb);
    trsm<T>(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit, T{1},
            a.block(j0, j0, jb, jb), below);
    syrk_lower<T>(T{-1},
                  MatrixView<const T>(below.data(), below.rows(), below.cols(),
                                      below.ld()),
                  T{1}, a.block(j0 + jb, j0 + jb, rest, rest));
  }
}

template void potrf_unblocked<float>(MatrixView<float>, index_t);
template void potrf_unblocked<double>(MatrixView<double>, index_t);
template void potrf<float>(MatrixView<float>, index_t, index_t);
template void potrf<double>(MatrixView<double>, index_t, index_t);

}  // namespace mfgpu
