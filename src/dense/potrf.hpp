// Dense Cholesky factorization (lower variant), blocked and unblocked.
//
// potrf is the pivot-block step of the paper's factor-update operation
// (Fig. 1). The blocked version recurses into trsm/syrk panels exactly like
// LAPACK's dpotrf; the unblocked version doubles as the w x w "light-weight
// GPU kernel" of the paper's on-GPU policy P4 (Fig. 9).
#pragma once

#include "dense/blas.hpp"
#include "dense/matrix.hpp"

namespace mfgpu {

/// Unblocked lower Cholesky of the leading square of `a` in place.
/// Throws NotPositiveDefiniteError on a non-positive pivot; `column_offset`
/// is added to the reported column so callers can give global indices.
template <typename T>
void potrf_unblocked(MatrixView<T> a, index_t column_offset = 0);

/// Blocked lower Cholesky in place with panel width `block`.
template <typename T>
void potrf(MatrixView<T> a, index_t block = 64, index_t column_offset = 0);

}  // namespace mfgpu
