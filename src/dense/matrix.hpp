// Column-major dense matrix container and non-owning view.
//
// All dense kernels in mfgpu operate on MatrixView<T>, so the same code path
// serves owning matrices, frontal-matrix slices, and panels of the supernodal
// factor. Column-major layout matches the BLAS/LAPACK convention used by the
// paper's kernels (potrf / trsm / syrk).
#pragma once

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

/// Non-owning view of a column-major matrix block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    MFGPU_CHECK(rows >= 0 && cols >= 0 && ld >= rows &&
                    (rows == 0 || ld >= 1),
                "MatrixView: invalid dimensions");
  }

  T* data() const noexcept { return data_; }
  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(index_t i, index_t j) const {
    return data_[i + j * ld_];
  }

  /// Sub-block view of `r` rows and `c` columns starting at (i0, j0).
  MatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    MFGPU_CHECK(i0 >= 0 && j0 >= 0 && i0 + r <= rows_ && j0 + c <= cols_,
                "MatrixView::block: out of range");
    return MatrixView(data_ + i0 + j0 * ld_, r, c, ld_);
  }

  /// View of a single column as an (rows x 1) matrix.
  MatrixView col(index_t j) const { return block(0, j, rows_, 1); }

  /// A mutable view converts implicitly to a read-only view.
  operator MatrixView<const T>() const
    requires(!std::is_const_v<T>)
  {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Owning column-major matrix. Leading dimension always equals rows().
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), fill) {}

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  const T& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  MatrixView<T> view() { return MatrixView<T>(data(), rows_, cols_, rows_); }
  MatrixView<const T> view() const {
    return MatrixView<const T>(data(), rows_, cols_, rows_);
  }
  /// Mutable block view.
  MatrixView<T> block(index_t i0, index_t j0, index_t r, index_t c) {
    return view().block(i0, j0, r, c);
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  static std::size_t checked_size(index_t rows, index_t cols) {
    MFGPU_CHECK(rows >= 0 && cols >= 0, "Matrix: negative dimensions");
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

/// Copy src into dst; shapes must match (leading dimensions may differ).
template <typename T, typename U>
void copy_into(MatrixView<U> src, MatrixView<T> dst) {
  MFGPU_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "copy_into: shape mismatch");
  for (index_t j = 0; j < src.cols(); ++j) {
    for (index_t i = 0; i < src.rows(); ++i) {
      dst(i, j) = static_cast<T>(src(i, j));
    }
  }
}

/// Frobenius norm of a view.
template <typename T>
double frobenius_norm(MatrixView<const T> a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      sum += v * v;
    }
  }
  return std::sqrt(sum);
}

/// Max-abs difference between two equally shaped views.
template <typename T>
double max_abs_diff(MatrixView<const T> a, MatrixView<const T> b) {
  MFGPU_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff: shape mismatch");
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      best = std::max(best,
                      std::abs(static_cast<double>(a(i, j)) -
                               static_cast<double>(b(i, j))));
    }
  }
  return best;
}

}  // namespace mfgpu
