#include "dense/blas.hpp"

#include <algorithm>

namespace mfgpu {
namespace {

// Cache-blocking tile edge. Modest by design: the kernels are correctness
// substrates for the simulator; wall-clock performance is not what the
// benchmarks measure (they use the calibrated virtual clock).
constexpr index_t kBlock = 64;

// C(MxN) += alpha * A(MxK) * B(KxN), all plain column-major blocks.
template <typename T>
void gemm_nn_accum(T alpha, MatrixView<const T> a, MatrixView<const T> b,
                   MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols(), k = a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const T scale = alpha * b(p, j);
      if (scale == T{}) continue;
      const T* __restrict__ acol = &a(0, p);
      T* __restrict__ ccol = &c(0, j);
      for (index_t i = 0; i < m; ++i) ccol[i] += scale * acol[i];
    }
  }
}

// C(MxN) += alpha * A(MxK) * B(NxK)^T.
template <typename T>
void gemm_nt_accum(T alpha, MatrixView<const T> a, MatrixView<const T> b,
                   MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols(), k = a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const T scale = alpha * b(j, p);
      if (scale == T{}) continue;
      const T* __restrict__ acol = &a(0, p);
      T* __restrict__ ccol = &c(0, j);
      for (index_t i = 0; i < m; ++i) ccol[i] += scale * acol[i];
    }
  }
}

// C(MxN) += alpha * A(KxM)^T * B(KxN).
template <typename T>
void gemm_tn_accum(T alpha, MatrixView<const T> a, MatrixView<const T> b,
                   MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols(), k = b.rows();
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ bcol = &b(0, j);
    for (index_t i = 0; i < m; ++i) {
      const T* __restrict__ acol = &a(0, i);
      T sum{};
      for (index_t p = 0; p < k; ++p) sum += acol[p] * bcol[p];
      c(i, j) += alpha * sum;
    }
  }
}

// C(MxN) += alpha * A(KxM)^T * B(NxK)^T.
template <typename T>
void gemm_tt_accum(T alpha, MatrixView<const T> a, MatrixView<const T> b,
                   MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols(), k = a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const T* __restrict__ acol = &a(0, i);
      T sum{};
      for (index_t p = 0; p < k; ++p) sum += acol[p] * b(j, p);
      c(i, j) += alpha * sum;
    }
  }
}

template <typename T>
void scale_matrix(T beta, MatrixView<T> c) {
  if (beta == T{1}) return;
  for (index_t j = 0; j < c.cols(); ++j) {
    T* __restrict__ col = &c(0, j);
    if (beta == T{}) {
      std::fill(col, col + c.rows(), T{});
    } else {
      for (index_t i = 0; i < c.rows(); ++i) col[i] *= beta;
    }
  }
}

}  // namespace

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, MatrixView<const T> a,
          MatrixView<const T> b, T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (trans_a == Trans::NoTrans) ? a.cols() : a.rows();
  const index_t a_m = (trans_a == Trans::NoTrans) ? a.rows() : a.cols();
  const index_t b_k = (trans_b == Trans::NoTrans) ? b.rows() : b.cols();
  const index_t b_n = (trans_b == Trans::NoTrans) ? b.cols() : b.rows();
  MFGPU_CHECK(a_m == m && b_k == k && b_n == n, "gemm: shape mismatch");

  scale_matrix(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == T{}) return;

  // Tile over (i, j, p) so panels of A and B stay cache resident.
  for (index_t j0 = 0; j0 < n; j0 += kBlock) {
    const index_t jb = std::min(kBlock, n - j0);
    for (index_t p0 = 0; p0 < k; p0 += kBlock) {
      const index_t pb = std::min(kBlock, k - p0);
      for (index_t i0 = 0; i0 < m; i0 += kBlock) {
        const index_t ib = std::min(kBlock, m - i0);
        auto cb = c.block(i0, j0, ib, jb);
        if (trans_a == Trans::NoTrans && trans_b == Trans::NoTrans) {
          gemm_nn_accum(alpha, a.block(i0, p0, ib, pb), b.block(p0, j0, pb, jb),
                        cb);
        } else if (trans_a == Trans::NoTrans) {
          gemm_nt_accum(alpha, a.block(i0, p0, ib, pb), b.block(j0, p0, jb, pb),
                        cb);
        } else if (trans_b == Trans::NoTrans) {
          gemm_tn_accum(alpha, a.block(p0, i0, pb, ib), b.block(p0, j0, pb, jb),
                        cb);
        } else {
          gemm_tt_accum(alpha, a.block(p0, i0, pb, ib), b.block(j0, p0, jb, pb),
                        cb);
        }
      }
    }
  }
}

template <typename T>
void syrk_lower(T alpha, MatrixView<const T> a, T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = a.cols();
  MFGPU_CHECK(c.cols() == n && a.rows() == n, "syrk_lower: shape mismatch");

  // Scale the lower triangle only; the upper triangle is never referenced.
  if (beta != T{1}) {
    for (index_t j = 0; j < n; ++j) {
      T* __restrict__ col = &c(0, j);
      for (index_t i = j; i < n; ++i) {
        col[i] = (beta == T{}) ? T{} : beta * col[i];
      }
    }
  }
  if (n == 0 || k == 0 || alpha == T{}) return;

  for (index_t j = 0; j < n; ++j) {
    for (index_t p = 0; p < k; ++p) {
      const T scale = alpha * a(j, p);
      if (scale == T{}) continue;
      const T* __restrict__ acol = &a(0, p);
      T* __restrict__ ccol = &c(0, j);
      for (index_t i = j; i < n; ++i) ccol[i] += scale * acol[i];
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          MatrixView<const T> a, MatrixView<T> b) {
  MFGPU_CHECK(a.rows() == a.cols(), "trsm: A must be square");
  MFGPU_CHECK(uplo == Uplo::Lower, "trsm: only lower-triangular A supported");
  const index_t n = a.rows();
  scale_matrix(alpha, b);

  if (side == Side::Right && trans == Trans::Transpose) {
    // Solve X * L^T = B  =>  column sweep: x_j = (b_j - sum_{p<j} x_p l_jp)/l_jj.
    MFGPU_CHECK(b.cols() == n, "trsm right: B column count must match A");
    const index_t m = b.rows();
    for (index_t j = 0; j < n; ++j) {
      T* __restrict__ bj = &b(0, j);
      for (index_t p = 0; p < j; ++p) {
        const T l_jp = a(j, p);
        if (l_jp == T{}) continue;
        const T* __restrict__ bp = &b(0, p);
        for (index_t i = 0; i < m; ++i) bj[i] -= l_jp * bp[i];
      }
      if (diag == Diag::NonUnit) {
        const T inv = T{1} / a(j, j);
        for (index_t i = 0; i < m; ++i) bj[i] *= inv;
      }
    }
    return;
  }

  if (side == Side::Left && trans == Trans::NoTrans) {
    // Solve L * X = B (forward substitution down the columns of B).
    MFGPU_CHECK(b.rows() == n, "trsm left: B row count must match A");
    for (index_t j = 0; j < b.cols(); ++j) {
      T* __restrict__ x = &b(0, j);
      for (index_t p = 0; p < n; ++p) {
        if (diag == Diag::NonUnit) x[p] /= a(p, p);
        const T xp = x[p];
        if (xp == T{}) continue;
        const T* __restrict__ lcol = &a(0, p);
        for (index_t i = p + 1; i < n; ++i) x[i] -= lcol[i] * xp;
      }
    }
    return;
  }

  if (side == Side::Left && trans == Trans::Transpose) {
    // Solve L^T * X = B (backward substitution).
    MFGPU_CHECK(b.rows() == n, "trsm left: B row count must match A");
    for (index_t j = 0; j < b.cols(); ++j) {
      T* __restrict__ x = &b(0, j);
      for (index_t p = n - 1; p >= 0; --p) {
        const T* __restrict__ lcol = &a(0, p);
        T sum = x[p];
        for (index_t i = p + 1; i < n; ++i) sum -= lcol[i] * x[i];
        x[p] = (diag == Diag::NonUnit) ? sum / a(p, p) : sum;
      }
    }
    return;
  }

  throw InvalidArgumentError("trsm: unsupported side/trans combination");
}

index_t potrf_ops(index_t k) { return k * k * k / 3; }
index_t trsm_ops(index_t m, index_t k) { return m * k * k; }
index_t syrk_ops(index_t m, index_t k) { return m * m * k; }
index_t gemm_ops(index_t m, index_t n, index_t k) { return 2 * m * n * k; }

// Explicit instantiations for the two precisions the system uses.
template void gemm<float>(Trans, Trans, float, MatrixView<const float>,
                          MatrixView<const float>, float, MatrixView<float>);
template void gemm<double>(Trans, Trans, double, MatrixView<const double>,
                           MatrixView<const double>, double,
                           MatrixView<double>);
template void syrk_lower<float>(float, MatrixView<const float>, float,
                                MatrixView<float>);
template void syrk_lower<double>(double, MatrixView<const double>, double,
                                 MatrixView<double>);
template void trsm<float>(Side, Uplo, Trans, Diag, float,
                          MatrixView<const float>, MatrixView<float>);
template void trsm<double>(Side, Uplo, Trans, Diag, double,
                           MatrixView<const double>, MatrixView<double>);

}  // namespace mfgpu
