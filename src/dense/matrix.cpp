#include "dense/matrix.hpp"

// Matrix and MatrixView are header-only templates; this translation unit
// pins a few common instantiations so errors surface at library build time.
namespace mfgpu {

template class Matrix<float>;
template class Matrix<double>;
template class MatrixView<float>;
template class MatrixView<double>;

}  // namespace mfgpu
