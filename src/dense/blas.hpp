// Level-3 BLAS kernels implemented from scratch (the paper offloads exactly
// these to ATLAS on the host and CUBLAS on the GPU: gemm, syrk, trsm).
//
// Only the variants the multifrontal algorithm needs are implemented, but
// each is implemented for the full shape range and validated against naive
// reference versions in the test suite. All matrices are column-major.
#pragma once

#include "dense/matrix.hpp"
#include "support/error.hpp"

namespace mfgpu {

enum class Trans { NoTrans, Transpose };
enum class Uplo { Lower, Upper };
enum class Side { Left, Right };
enum class Diag { NonUnit, Unit };

/// C := alpha * op(A) * op(B) + beta * C.
/// op(A) is (M x K), op(B) is (K x N), C is (M x N).
template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, MatrixView<const T> a,
          MatrixView<const T> b, T beta, MatrixView<T> c);

/// Symmetric rank-k update, lower triangle only:
/// C := alpha * A * A^T + beta * C with A (N x K), C (N x N).
/// This is the paper's syrk kernel (U^n -= L2 * L2^T uses alpha = -1).
template <typename T>
void syrk_lower(T alpha, MatrixView<const T> a, T beta, MatrixView<T> c);

/// Triangular solve with multiple right-hand sides.
/// Side::Right, Trans::Transpose, Uplo::Lower solves X * L^T = B in place
/// (the paper's trsm: L2 := L2 * L1^{-T}).
/// Side::Left supports the supernodal forward (NoTrans) and backward
/// (Transpose) substitution sweeps.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          MatrixView<const T> a, MatrixView<T> b);

/// Number of floating point operations for each kernel, following the
/// paper's asymptotic counts (Section IV-B): potrf k^3/3, trsm m k^2,
/// syrk m^2 k (counting multiply-add as 2 flops would double these; we keep
/// the paper's convention so rates are comparable with Table III).
index_t potrf_ops(index_t k);
index_t trsm_ops(index_t m, index_t k);
index_t syrk_ops(index_t m, index_t k);
index_t gemm_ops(index_t m, index_t n, index_t k);

}  // namespace mfgpu
