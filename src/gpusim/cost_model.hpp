// Calibrated timing models for the paper's hardware.
//
// Host: one core of an Intel Xeon 5160 running ATLAS in double precision
// (12 GFlops/s peak; Table III measures potrf 8.84, trsm 9.24, syrk 10.02
// GFlops/s stabilized). GPU: Nvidia Tesla T10 running CUBLAS 2.3 in single
// precision (624 GFlops/s peak; Table III measures trsm 153.7, syrk 159.69
// GFlops/s stabilized), connected over PCIe x8 with an observed effective
// bandwidth of ~1.4 GB/s for pageable transfers.
//
// Each kernel's time is modeled as
//     t(N, d) = latency + (N + N_half) / (peak * d / (d + dim_half))
// where N is the op count and d the smallest matrix dimension involved.
// N_half captures the utilization ramp with op count the paper observes
// ("utilization steadily increases with the number of operations and
// stabilizes only for large counts"); dim_half captures the inefficiency of
// narrow panels (tall-skinny trsm / low-rank syrk), which is what keeps the
// composite on-GPU potrf of policy P4 well below the asymptotic kernel
// rates (Table V). The constants are calibrated so the paper's measured
// transition points emerge: trsm CPU->GPU at ~4e5 ops (no copy) / ~3e6 ops
// (with copy), syrk at ~1.5e5 ops (no copy), and policy switches near
// 2e6 / 1.5e7 / 9e10 ops. tests/gpusim/calibration_test.cpp pins these.
#pragma once

#include "support/error.hpp"

namespace mfgpu {

/// Affine-ramp rate model for one dense kernel on one processor.
struct KernelRateModel {
  double peak_flops = 1e9;   ///< asymptotic Flops/s
  double ops_half = 0.0;     ///< op count at which half of peak is reached
  double latency = 0.0;      ///< fixed per-call seconds (kernel launch etc.)
  double dim_half = 0.0;     ///< min-dimension at which shape efficiency = 1/2

  /// Seconds for `ops` operations whose smallest dimension is `min_dim`.
  double time(double ops, double min_dim) const;
  /// Effective rate in Flops/s (0 when ops == 0).
  double rate(double ops, double min_dim) const;

  /// Pure flop seconds at the shape-degraded rate — no launch latency, no
  /// utilization ramp. The per-member increment of an aggregated (batched)
  /// launch: each member still pays its own tile-shape inefficiency.
  double marginal_time(double ops, double min_dim) const;
  /// Once-per-launch fixed cost of a batched call: the launch latency plus
  /// the utilization ramp charged at asymptotic peak. An aggregated launch
  /// climbs the occupancy ramp once over its total op count instead of
  /// once per tiny member call — the amortization that makes batched BLAS
  /// pay off in the paper's small-call regime.
  double batch_overhead() const;
};

/// The four dense kernels used by factor-update and its P4 panel variant.
struct ProcessorModel {
  KernelRateModel potrf;
  KernelRateModel trsm;
  KernelRateModel syrk;
  KernelRateModel gemm;
  double peak_flops = 0.0;  ///< theoretical peak for %-of-peak reporting
};

/// PCIe + memory-management model.
struct TransferModel {
  double sync_bandwidth = 1.4e9;    ///< B/s, pageable host memory
  double sync_latency = 20e-6;      ///< s per transfer
  double async_bandwidth = 3.0e9;   ///< B/s, pinned host memory
  double async_latency = 8e-6;      ///< s per transfer
  double enqueue_overhead = 2e-6;   ///< host-side cost of an async enqueue
  double kernel_enqueue = 3e-6;     ///< host-side cost of a kernel launch

  double pinned_alloc_latency = 400e-6;  ///< s per pinned allocation call
  double pinned_alloc_per_byte = 2e-10;  ///< s/B (page-locking cost)
  double device_alloc_latency = 150e-6;  ///< s per cudaMalloc-equivalent

  double sync_copy_time(double bytes) const {
    return sync_latency + bytes / sync_bandwidth;
  }
  double async_copy_time(double bytes) const {
    return async_latency + bytes / async_bandwidth;
  }
  double pinned_alloc_time(double bytes) const {
    return pinned_alloc_latency + bytes * pinned_alloc_per_byte;
  }
};

/// Host model: Xeon 5160 single core, double precision (12 GFlops/s peak).
ProcessorModel xeon5160_model();

/// GPU model: Tesla T10, single precision (624 GFlops/s peak). `potrf` here
/// is the "light-weight" w x w panel kernel of the paper's Fig. 9, not a
/// full factorization (which P4 composes out of panel kernels).
ProcessorModel tesla_t10_model();

/// Default PCIe x8 transfer model matching the paper's observed 1.4 GB/s.
TransferModel pcie_x8_model();

}  // namespace mfgpu
