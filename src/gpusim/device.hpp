// The simulated GPU: streams, device memory pools, and PCIe transfers.
//
// Device substitutes for the paper's Tesla T10. Numerics are real (kernels
// execute on the host in single precision — the precision the paper uses on
// the T10, trading accuracy for its 8x SP/DP throughput gap and recovering
// it with iterative refinement); time is virtual, charged against the
// calibrated cost models.
//
// All copy/allocate methods return the model *duration* of the operation in
// seconds so executors can attribute component times in the trace; the
// effect on the clocks/streams is applied internally.
//
// Thread affinity: a Device (with its streams, pools, and clocks) has no
// internal synchronization and must be driven by one thread at a time. The
// parallel numeric engine (multifrontal/parallel.hpp) therefore gives every
// GPU-bearing worker a private Device instance — like one CUDA context per
// host thread on the paper's hardware generation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gpusim/clock.hpp"
#include "gpusim/cost_class.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/stream.hpp"

namespace mfgpu {

class Device {
 public:
  struct Options {
    ProcessorModel gpu = tesla_t10_model();
    TransferModel transfer = pcie_x8_model();
    std::int64_t memory_bytes = std::int64_t{4} * 1024 * 1024 * 1024;
    bool pool_reuse = true;  ///< the paper's high-water-mark policy (§V-A2)
    bool numeric = true;     ///< execute kernels numerically (off = dry runs)
    /// Deterministic fault injection (all rates 0 = no faults, no overhead).
    FaultInjectorOptions faults;
  };

  Device();
  explicit Device(Options options);

  const ProcessorModel& model() const noexcept { return options_.gpu; }
  const TransferModel& transfer() const noexcept { return options_.transfer; }
  bool numeric() const noexcept { return options_.numeric; }

  /// This device's fault source. All gpublas kernel launches, transfers,
  /// and pool acquires sample it; see gpusim/fault_injector.hpp for the
  /// determinism contract.
  FaultInjector& fault_injector() noexcept { return injector_; }
  const FaultInjector& fault_injector() const noexcept { return injector_; }

  /// Default streams: compute, host-to-device copy, device-to-host copy.
  Stream& compute_stream() noexcept { return streams_[0]; }
  Stream& h2d_stream() noexcept { return streams_[1]; }
  Stream& d2h_stream() noexcept { return streams_[2]; }

  /// Index of one of this device's streams (0 = compute, 1 = h2d,
  /// 2 = d2h; -1 for a foreign stream). Used by the schedule recorder to
  /// key replayable stream timelines.
  int stream_index(const Stream& stream) const noexcept {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (&streams_[i] == &stream) return static_cast<int>(i);
    }
    return -1;
  }

  /// Cost class of a stall on one of this device's streams: compute-stream
  /// stalls are bounded by kernel time (Gpu), copy-stream stalls by the
  /// link (Transfer).
  CostClass stream_stall_class(const Stream& stream) const noexcept {
    return (&stream == &streams_[0]) ? CostClass::Gpu : CostClass::Transfer;
  }

  /// Allocate a device matrix in the named pool slot, charging the host
  /// clock for the (possibly pooled-away) cudaMalloc-equivalent. Returns
  /// the matrix; its contents are zero in numeric mode.
  DeviceMatrix allocate(index_t rows, index_t cols, const std::string& slot,
                        SimClock& host);

  /// Charge the host for staging `bytes` of pinned memory in `slot`
  /// (required for async copies; pooled like device memory). Returns the
  /// seconds charged (0 when the high-water slot already fits).
  double acquire_pinned(const std::string& slot, std::int64_t bytes,
                        SimClock& host);

  /// Synchronous pageable-memory copies: block the host clock. `dst`/`src`
  /// name a block inside the device matrix at (i0, j0).
  double copy_to_device_sync(MatrixView<const double> src, DeviceMatrix& dst,
                             index_t i0, index_t j0, SimClock& host);
  double copy_from_device_sync(const DeviceMatrix& src, index_t i0, index_t j0,
                               MatrixView<double> dst, SimClock& host);

  /// Asynchronous pinned-memory copies on `stream`: the host clock only
  /// pays the enqueue overhead. Caller must have acquired pinned staging
  /// and must synchronize before consuming the destination.
  double copy_to_device_async(MatrixView<const double> src, DeviceMatrix& dst,
                              index_t i0, index_t j0, Stream& stream,
                              SimClock& host);
  double copy_from_device_async(const DeviceMatrix& src, index_t i0,
                                index_t j0, MatrixView<double> dst,
                                Stream& stream, SimClock& host);

  /// One member block of a batched (coalesced) transfer.
  struct H2dCopy {
    MatrixView<const double> src;
    DeviceMatrix* dst = nullptr;
    index_t i0 = 0, j0 = 0;
  };
  struct D2hCopy {
    const DeviceMatrix* src = nullptr;
    index_t i0 = 0, j0 = 0;
    MatrixView<double> dst;
  };

  /// Coalesced async copies: every member block moves in ONE simulated
  /// transfer — one enqueue overhead on the host, one transfer latency,
  /// summed bytes at async bandwidth. This is the amortization the batched
  /// execution path buys (per-front async copies each pay latency +
  /// enqueue). Fault injection samples per member under its own scope
  /// (`scopes[i]`, resumed at `fault_ops[i]`): corruption poisons that
  /// member only, death throws sticky. Members with `skip[i] != 0` move no
  /// data and charge nothing.
  double copy_to_device_async_batched(std::span<const H2dCopy> blocks,
                                      std::span<const std::uint64_t> scopes,
                                      std::span<std::uint64_t> fault_ops,
                                      std::span<const char> skip,
                                      Stream& stream, SimClock& host);
  double copy_from_device_async_batched(std::span<const D2hCopy> blocks,
                                        std::span<const std::uint64_t> scopes,
                                        std::span<std::uint64_t> fault_ops,
                                        std::span<const char> skip,
                                        Stream& stream, SimClock& host);

  /// cudaEventRecord / cudaDeviceSynchronize equivalents.
  Event record(const Stream& stream) const { return Event{stream.ready_at()}; }
  void synchronize(SimClock& host);
  void synchronize_stream(const Stream& stream, SimClock& host) {
    CostClassScope cls(stream_stall_class(stream));
    host.advance_to(stream.ready_at());
  }

  const PoolStats& device_pool_stats() const noexcept {
    return device_pool_.stats();
  }
  const PoolStats& pinned_pool_stats() const noexcept {
    return pinned_pool_.stats();
  }
  /// Total bytes moved over the (simulated) PCIe link so far.
  double bytes_transferred() const noexcept { return bytes_transferred_; }

  void reset();

 private:
  MatrixView<float> device_block(DeviceMatrix& m, index_t i0, index_t j0,
                                 index_t rows, index_t cols) const;

  /// Draw the fault outcome for one pool acquire; throws on injected OOM
  /// or device death.
  void check_alloc_fault(const char* what);

  Options options_;
  std::vector<Stream> streams_;
  MemoryPool device_pool_;
  MemoryPool pinned_pool_;
  FaultInjector injector_;
  double bytes_transferred_ = 0.0;
};

}  // namespace mfgpu
