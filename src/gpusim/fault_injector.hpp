// Deterministic fault injection for the simulated GPU.
//
// The paper's hybrid scheduler assumes the device always answers; real
// deployments see transient kernel launch failures, corrupted transfers,
// allocator hiccups, and outright device loss. FaultInjector lets every
// Device produce those failure modes at configurable per-operation
// probabilities so the dispatch/scheduling/serving layers above can be
// exercised (and chaos-tested) without real hardware.
//
// Determinism contract: the fault schedule is a pure function of
// (seed, scope, op-index-within-scope, site). Executors open a scope per
// frontal matrix (keyed on the front's first global column), so whether a
// given front faults does NOT depend on which worker the work-stealing pool
// happened to run it on — factorize_parallel stays reproducible for a fixed
// seed. History-dependent operations that are not per-front (pool warm-up in
// PolicyExecutor::ensure_prepared) run under a FaultSuppressionGuard so they
// cannot shift the per-front op indices.
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace mfgpu {

/// Where in the device an operation executes; each site can produce a
/// different subset of fault kinds.
enum class FaultSite {
  Kernel,    ///< gpublas kernel launches (potrf/trsm/syrk/gemm)
  Transfer,  ///< PCIe copies (TransferModel call sites)
  Alloc      ///< device/pinned pool acquires
};

enum class FaultKind {
  None = 0,
  TransientKernel,     ///< kernel launch fails; retry may succeed
  TransferCorruption,  ///< copy completes but poisons data (non-finite)
  SpuriousOom,         ///< allocator reports OOM despite available memory
  DeviceDeath          ///< sticky: every later operation faults too
};

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultInjectorOptions {
  std::uint64_t seed = 0;
  /// Per-operation probabilities, each in [0, 1).
  double transient_kernel_rate = 0.0;   ///< Kernel site
  double transfer_corruption_rate = 0.0;  ///< Transfer site
  double spurious_oom_rate = 0.0;       ///< Alloc site
  double device_death_rate = 0.0;       ///< any site; sticky once drawn

  bool any() const noexcept {
    return transient_kernel_rate > 0.0 || transfer_corruption_rate > 0.0 ||
           spurious_oom_rate > 0.0 || device_death_rate > 0.0;
  }

  friend bool operator==(const FaultInjectorOptions&,
                         const FaultInjectorOptions&) = default;
};

struct FaultInjectorStats {
  std::int64_t sampled_ops = 0;
  std::int64_t transient_kernel = 0;
  std::int64_t transfer_corruption = 0;
  std::int64_t spurious_oom = 0;
  std::int64_t device_death = 0;

  std::int64_t total_faults() const noexcept {
    return transient_kernel + transfer_corruption + spurious_oom +
           device_death;
  }
};

/// Seeded per-device fault source. Not thread-safe — like the Device that
/// owns it, an injector is driven by one worker thread at a time.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultInjectorOptions options);

  bool enabled() const noexcept { return enabled_; }
  const FaultInjectorOptions& options() const noexcept { return options_; }

  /// Start a new deterministic sampling scope (e.g. one frontal matrix,
  /// keyed on its first global column). Resets the op index so the fault
  /// schedule inside the scope is independent of everything sampled before.
  void begin_scope(std::uint64_t scope) noexcept {
    scope_ = scope;
    op_index_ = 0;
  }

  /// Resume a scope at a given op index. Batched dispatches interleave the
  /// member fronts' operations (upload all, potrf all, ...), so each member
  /// carries its own op counter across stages: its fault schedule stays a
  /// pure function of (seed, front, op) — independent of the batch it
  /// landed in. Pair with op_index() to read the counter back after
  /// sampling.
  void resume_scope(std::uint64_t scope, std::uint64_t op_index) noexcept {
    scope_ = scope;
    op_index_ = op_index;
  }

  /// Next op index within the current scope.
  std::uint64_t op_index() const noexcept { return op_index_; }

  /// Draw the fault outcome for the next operation at `site`. Advances the
  /// op index and accumulates stats. Returns DeviceDeath for every call once
  /// the device died. Suppressed or disabled injectors always return None
  /// (without consuming an op index when disabled).
  FaultKind sample(FaultSite site);

  bool dead() const noexcept { return dead_; }
  void mark_dead() noexcept { dead_ = true; }

  const FaultInjectorStats& stats() const noexcept { return stats_; }

  /// Clears death, stats, and scope state (options and seed survive).
  void reset() noexcept;

  /// The deterministic draw sample() uses, exposed as a pure function for
  /// dry-run fault models (sched/list_scheduler.cpp): uniform in [0, 1)
  /// from (seed, scope, op).
  static double uniform(std::uint64_t seed, std::uint64_t scope,
                        std::uint64_t op) noexcept;

 private:
  friend class FaultSuppressionGuard;

  double draw() noexcept;  ///< uniform in [0, 1) from (seed, scope, op)

  FaultInjectorOptions options_;
  bool enabled_ = false;
  bool dead_ = false;
  int suppress_depth_ = 0;
  std::uint64_t scope_ = 0;
  std::uint64_t op_index_ = 0;
  FaultInjectorStats stats_;
};

/// RAII pause for history-dependent code paths (pool warm-up) whose
/// operations must not consume per-scope draws. Null injector = no-op.
class FaultSuppressionGuard {
 public:
  explicit FaultSuppressionGuard(FaultInjector* injector) noexcept
      : injector_(injector) {
    if (injector_ != nullptr) ++injector_->suppress_depth_;
  }
  ~FaultSuppressionGuard() {
    if (injector_ != nullptr) --injector_->suppress_depth_;
  }
  FaultSuppressionGuard(const FaultSuppressionGuard&) = delete;
  FaultSuppressionGuard& operator=(const FaultSuppressionGuard&) = delete;

 private:
  FaultInjector* injector_;
};

}  // namespace mfgpu
