#include "gpusim/stream.hpp"

#include "obs/metrics.hpp"

namespace mfgpu {

double Stream::enqueue(double earliest, double duration) {
  MFGPU_CHECK(duration >= 0.0, "Stream: negative duration");
  const double start = std::max(ready_, earliest);
  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.increment("gpusim.stream.ops");
    metrics.add("gpusim.stream.busy_seconds", duration);
    // Simulated time the stream sat idle waiting for inputs/enqueue.
    metrics.add("gpusim.stream.idle_gap_seconds", start - ready_);
  }
  ready_ = start + duration;
  return ready_;
}

}  // namespace mfgpu
