#include "gpusim/stream.hpp"

// Stream and Event are fully inline; this file pins the module in the build.
