// Thread-local classification of simulated-time charges. Every SimClock
// advance and stream stall happens under one of these classes; the schedule
// flight recorder reads the ambient class when its ClockSink callbacks fire,
// and the what-if replay engine scales recorded durations per class (a
// "2x faster GPU" counterfactual scales Gpu-class stream durations, a
// "2x faster link" scales Transfer-class ones, and so on).
//
// The class of a charge follows the *model* that priced it, because the
// counterfactual reruns scale whole models:
//   Host      — host ProcessorModel kernel time (potrf/trsm/syrk/gemm)
//   Assembly  — memory-bound extend-add/scatter/pack work (fixed rate,
//               never scaled)
//   Gpu       — device ProcessorModel kernel time on the compute stream,
//               and host stalls bounded by it
//   Transfer  — TransferModel charges: PCIe copies, enqueue/launch
//               overheads, and host stalls on the copy streams
//   Alloc     — pool acquire charges (alloc latencies live in the
//               TransferModel, so these scale with Transfer in reruns)
#pragma once

#include <cstdint>

namespace mfgpu {

enum class CostClass : std::uint8_t {
  Host = 0,
  Assembly,
  Gpu,
  Transfer,
  Alloc,
};

inline constexpr int kNumCostClasses = 5;

inline const char* cost_class_name(CostClass c) {
  switch (c) {
    case CostClass::Host: return "host";
    case CostClass::Assembly: return "assembly";
    case CostClass::Gpu: return "gpu";
    case CostClass::Transfer: return "transfer";
    case CostClass::Alloc: return "alloc";
  }
  return "?";
}

namespace detail {
inline thread_local CostClass t_cost_class = CostClass::Host;
}  // namespace detail

inline CostClass current_cost_class() noexcept {
  return detail::t_cost_class;
}

/// RAII override of the ambient cost class for the charges in scope.
class CostClassScope {
 public:
  explicit CostClassScope(CostClass c) noexcept
      : prev_(detail::t_cost_class) {
    detail::t_cost_class = c;
  }
  ~CostClassScope() { detail::t_cost_class = prev_; }
  CostClassScope(const CostClassScope&) = delete;
  CostClassScope& operator=(const CostClassScope&) = delete;

 private:
  CostClass prev_;
};

}  // namespace mfgpu
