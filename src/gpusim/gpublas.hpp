// CUBLAS-like kernels on the simulated device, and their host (ATLAS-like)
// counterparts. Each call performs the real computation (float on device,
// double on host, unless the execution is a dry run), charges the
// calibrated model time to the right clock/stream, and returns the kernel's
// model duration in seconds so callers can attribute component times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dense/blas.hpp"
#include "dense/matrix.hpp"
#include "gpusim/device.hpp"

namespace mfgpu {

/// A rectangular block of a device matrix, carrying the owning matrix for
/// availability bookkeeping (dependencies are tracked per matrix).
struct DevBlock {
  DeviceMatrix* mat = nullptr;
  index_t i0 = 0, j0 = 0, rows = 0, cols = 0;

  MatrixView<float> view() const {
    return mat->data.view().block(i0, j0, rows, cols);
  }
};

DevBlock dev_whole(DeviceMatrix& m);
DevBlock dev_block(DeviceMatrix& m, index_t i0, index_t j0, index_t rows,
                   index_t cols);

/// Execution context for device kernels: which device, which stream, and
/// the host clock paying the enqueue overheads.
struct GpuExec {
  Device* device = nullptr;
  Stream* stream = nullptr;
  SimClock* host = nullptr;
};

/// Light-weight w x w Cholesky kernel (paper Fig. 9 panel step).
double gpu_potrf(const GpuExec& exec, DevBlock a, index_t column_offset = 0);
/// rhs := rhs * tri^{-T} (the paper's trsm; tri lower-triangular k x k,
/// rhs m x k).
double gpu_trsm(const GpuExec& exec, DevBlock tri, DevBlock rhs);
/// c(lower) := c + alpha * a * a^T  (paper's syrk).
double gpu_syrk(const GpuExec& exec, float alpha, DevBlock a, DevBlock c);
/// c := c + alpha * a * b^T (panel update inside P4).
double gpu_gemm_nt(const GpuExec& exec, float alpha, DevBlock a, DevBlock b,
                   DevBlock c);

// ---------------------------------------------------------------------------
// Batched-BLAS-style aggregated launches.
//
// Each member front keeps its own marginal flop time (at its own
// tile-shape-degraded rate), but the whole batch pays ONE host
// kernel-enqueue and ONE per-launch fixed cost — launch latency plus the
// utilization ramp (KernelRateModel::batch_overhead):
//     t_batch = latency + ops_half/peak + sum_i marginal_i
// The aggregated launch climbs the occupancy ramp once over its total op
// count instead of once per tiny call — the amortization that makes the
// paper's ~97% small-call regime worth sending to the GPU at all.
//
// These launches are priced, not computed: they model FP64 batched kernels
// (dpotrf/dtrsm/dsyrk_batched), so the authoritative member math runs on
// the host in double inside run_batched_dispatch — bit-for-bit the per-front
// P1 kernels. The float device buffers only carry the transfer/fault
// simulation (an injected transfer corruption lands in them and is caught
// when the downloads are validated).
//
// Fault contract (degrade per front, never per batch): every member samples
// the injector under its own scope (`scopes[i]`, op counter resumed from
// `fault_ops[i]` and written back). A transient fault marks that member in
// `skip` and appends its index to `faulted`; its numeric work is dropped but
// its wasted device time stays charged, and the rest of the batch proceeds.
// DeviceDeath still throws (sticky) after charging the batch. Members
// already marked in `skip` are ignored entirely.
// ---------------------------------------------------------------------------

/// One member of a batched launch that faulted: its index in the batch and
/// the injected fault kind the launch observed for it.
struct BatchFault {
  std::size_t index = 0;
  FaultKind kind = FaultKind::None;
};

double gpu_potrf_batched(const GpuExec& exec, std::span<const DevBlock> as,
                         std::span<const index_t> column_offsets,
                         std::span<const std::uint64_t> scopes,
                         std::span<std::uint64_t> fault_ops,
                         std::span<char> skip,
                         std::vector<BatchFault>& faulted);
double gpu_trsm_batched(const GpuExec& exec, std::span<const DevBlock> tris,
                        std::span<const DevBlock> rhss,
                        std::span<const std::uint64_t> scopes,
                        std::span<std::uint64_t> fault_ops,
                        std::span<char> skip,
                        std::vector<BatchFault>& faulted);
double gpu_syrk_batched(const GpuExec& exec, float alpha,
                        std::span<const DevBlock> as,
                        std::span<const DevBlock> cs,
                        std::span<const std::uint64_t> scopes,
                        std::span<std::uint64_t> fault_ops,
                        std::span<char> skip,
                        std::vector<BatchFault>& faulted);

/// Host execution context: the CPU clock plus its calibrated model.
struct HostExec {
  SimClock* clock = nullptr;
  const ProcessorModel* model = nullptr;
  bool numeric = true;
};

double host_potrf(const HostExec& exec, MatrixView<double> a,
                  index_t column_offset = 0);
double host_trsm(const HostExec& exec, MatrixView<const double> tri,
                 MatrixView<double> rhs);
double host_syrk(const HostExec& exec, double alpha,
                 MatrixView<const double> a, MatrixView<double> c);
double host_gemm_nt(const HostExec& exec, double alpha,
                    MatrixView<const double> a, MatrixView<const double> b,
                    MatrixView<double> c);
/// c(lower) -= product, elementwise (host application of a device-computed
/// L2 L2^T, charged at memory-bound speed).
double host_apply_update(const HostExec& exec, MatrixView<const double> product,
                         MatrixView<double> c);
/// Charge generic memory-bound assembly work of `entries` moved entries.
double host_assembly_cost(const HostExec& exec, double entries);

/// Memory-bound host rate for assembly/apply operations (entries/s).
double host_assembly_rate();

}  // namespace mfgpu
