#include "gpusim/memory.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mfgpu {

MemoryPool::MemoryPool(std::string name, double alloc_latency,
                       double alloc_per_byte, std::int64_t capacity_bytes,
                       bool reuse)
    : name_(std::move(name)),
      alloc_latency_(alloc_latency),
      alloc_per_byte_(alloc_per_byte),
      capacity_bytes_(capacity_bytes),
      reuse_(reuse) {
  MFGPU_CHECK(capacity_bytes_ > 0, "MemoryPool: capacity must be positive");
}

double MemoryPool::acquire(const std::string& slot, std::int64_t bytes) {
  MFGPU_CHECK(bytes >= 0, "MemoryPool: negative size");
  // Strong exception guarantee: compute the prospective totals first and
  // throw before touching the slot map or the stats, so a failed acquire
  // leaves the pool exactly as it found it.
  const auto it = high_water_.find(slot);
  const std::int64_t old_high = (it != high_water_.end()) ? it->second : 0;
  const std::int64_t new_high = std::max(old_high, bytes);
  const bool charged = !reuse_ || bytes > old_high;
  const double cost =
      charged ? alloc_latency_ + static_cast<double>(bytes) * alloc_per_byte_
              : 0.0;
  std::int64_t total = new_high - old_high;
  for (const auto& [key, value] : high_water_) total += value;
  if (total > capacity_bytes_) {
    throw DeviceOutOfMemoryError(name_ + ": pool exceeds capacity (" +
                                 std::to_string(total) + " > " +
                                 std::to_string(capacity_bytes_) + " bytes)");
  }

  ++stats_.acquire_calls;
  if (charged) ++stats_.charged_allocations;
  high_water_[slot] = new_high;
  stats_.current_high_water_bytes = total;
  stats_.peak_bytes = std::max(stats_.peak_bytes, total);
  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.increment("gpusim.pool." + name_ + ".acquires");
    if (cost > 0.0) {
      metrics.increment("gpusim.pool." + name_ + ".charged_allocations");
      metrics.add("gpusim.pool." + name_ + ".alloc_seconds", cost);
    }
    metrics.gauge_max("gpusim.pool." + name_ + ".high_water_bytes",
                      static_cast<double>(total));
  }
  return cost;
}

void MemoryPool::reset() {
  high_water_.clear();
  stats_ = PoolStats{};
}

}  // namespace mfgpu
