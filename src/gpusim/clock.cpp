#include "gpusim/clock.hpp"

// SimClock is fully inline; this file exists so the build lists the module.
