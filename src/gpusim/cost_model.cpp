#include "gpusim/cost_model.hpp"

namespace mfgpu {

double KernelRateModel::time(double ops, double min_dim) const {
  MFGPU_CHECK(ops >= 0.0 && min_dim >= 0.0, "KernelRateModel: negative input");
  if (ops == 0.0) return 0.0;
  const double shape_eff =
      (dim_half <= 0.0) ? 1.0 : min_dim / (min_dim + dim_half);
  const double effective_peak = peak_flops * shape_eff;
  return latency + (ops + ops_half) / effective_peak;
}

double KernelRateModel::rate(double ops, double min_dim) const {
  if (ops == 0.0) return 0.0;
  return ops / time(ops, min_dim);
}

double KernelRateModel::marginal_time(double ops, double min_dim) const {
  MFGPU_CHECK(ops >= 0.0 && min_dim >= 0.0, "KernelRateModel: negative input");
  if (ops == 0.0) return 0.0;
  const double shape_eff =
      (dim_half <= 0.0) ? 1.0 : min_dim / (min_dim + dim_half);
  return ops / (peak_flops * shape_eff);
}

double KernelRateModel::batch_overhead() const {
  return latency + ops_half / peak_flops;
}

ProcessorModel xeon5160_model() {
  ProcessorModel m;
  // Double-precision ATLAS on one 3.0 GHz Woodcrest core. Ramps quickly
  // (good caches, no launch cost) and saturates at Table III's rates.
  m.potrf = {8.9e9, 8e3, 3e-7, 12.0};
  m.trsm = {9.35e9, 1e4, 3e-7, 12.0};
  m.syrk = {10.15e9, 1e4, 3e-7, 12.0};
  m.gemm = {10.6e9, 1e4, 3e-7, 12.0};
  m.peak_flops = 12e9;
  return m;
}

ProcessorModel tesla_t10_model() {
  ProcessorModel m;
  // Single-precision CUBLAS 2.3. Big launch latency, long utilization ramp,
  // and strong sensitivity to the smallest dimension (tile shape).
  m.potrf = {25e9, 5e4, 6e-6, 32.0};   // light-weight w x w panel kernel
  m.trsm = {170e9, 1.0e6, 40e-6, 120.0};
  m.syrk = {175e9, 1.0e5, 10e-6, 175.0};
  m.gemm = {330e9, 2.0e5, 10e-6, 96.0};
  m.peak_flops = 624e9;
  return m;
}

TransferModel pcie_x8_model() { return TransferModel{}; }

}  // namespace mfgpu
