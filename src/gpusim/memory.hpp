// Simulated device memory and the high-water-mark allocation pools.
//
// The paper (Section V-A2) observes that per-call pinned/device allocation
// is prohibitively expensive for the many small supernodes of a sparse
// factorization, and instead reallocates "only when the maximum allocated
// size over all the previous calls is insufficient". MemoryPool implements
// exactly that policy per named slot, with a switch to disable it for the
// ablation benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dense/matrix.hpp"
#include "gpusim/clock.hpp"
#include "support/error.hpp"

namespace mfgpu {

/// A matrix resident in simulated device memory. Contents are real (the
/// simulated kernels execute on the host in float — the precision the paper
/// uses on the T10); `available_at` is the virtual time at which the last
/// producing operation completes, which is how cross-stream data
/// dependencies serialize.
struct DeviceMatrix {
  Matrix<float> data;  ///< empty in dry-run mode (shape_* still set)
  index_t shape_rows = 0;
  index_t shape_cols = 0;
  double available_at = 0.0;

  index_t rows() const noexcept { return shape_rows; }
  index_t cols() const noexcept { return shape_cols; }
};

struct PoolStats {
  std::int64_t acquire_calls = 0;
  std::int64_t charged_allocations = 0;  ///< acquires that paid the alloc cost
  std::int64_t peak_bytes = 0;
  std::int64_t current_high_water_bytes = 0;
};

/// High-water-mark allocator for one memory kind (device or pinned host).
/// acquire() returns the seconds to charge for the allocation.
class MemoryPool {
 public:
  /// `reuse` false = pay the allocation cost on every acquire (ablation).
  MemoryPool(std::string name, double alloc_latency, double alloc_per_byte,
             std::int64_t capacity_bytes, bool reuse = true);

  /// Seconds of allocation cost for a buffer of `bytes` in `slot`.
  /// Throws DeviceOutOfMemoryError when the total high water exceeds
  /// capacity.
  double acquire(const std::string& slot, std::int64_t bytes);

  const PoolStats& stats() const noexcept { return stats_; }
  void reset();

 private:
  std::string name_;
  double alloc_latency_;
  double alloc_per_byte_;
  std::int64_t capacity_bytes_;
  bool reuse_;
  std::unordered_map<std::string, std::int64_t> high_water_;
  PoolStats stats_;
};

}  // namespace mfgpu
