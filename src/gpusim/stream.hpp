// CUDA-style streams and events on virtual time.
//
// A stream is an in-order queue: each enqueued operation starts when the
// stream is free AND all of its input buffers are available. Distinct
// streams overlap freely, which is how the paper's copy/compute overlap
// (Section V-A2) is modeled.
#pragma once

#include <algorithm>

#include "gpusim/clock.hpp"
#include "support/error.hpp"

namespace mfgpu {

class Stream {
 public:
  /// Virtual time at which all enqueued work completes.
  double ready_at() const noexcept { return ready_; }

  /// Enqueue an operation of `duration` seconds that cannot start before
  /// `earliest` (host enqueue time and input availability). Returns the
  /// completion time. Records stream occupancy/idle-gap metrics when the
  /// observability layer is enabled.
  double enqueue(double earliest, double duration);

  /// Make subsequent work wait for `time` (cudaStreamWaitEvent).
  void wait_until(double time) { ready_ = std::max(ready_, time); }

  void reset() noexcept { ready_ = 0.0; }

 private:
  double ready_ = 0.0;
};

/// A recorded point in a stream's timeline (cudaEvent).
struct Event {
  double time = 0.0;
};

}  // namespace mfgpu
