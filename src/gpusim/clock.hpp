// Virtual time. All performance numbers the benchmarks report are measured
// on SimClock instances, never on wall clock: the paper's hardware (Xeon
// 5160 + Tesla T10 over PCIe x8) is reproduced as a calibrated timing model,
// which makes every experiment deterministic and machine-independent.
#pragma once

#include "support/error.hpp"

namespace mfgpu {

class SimClock {
 public:
  double now() const noexcept { return now_; }

  /// Spend `seconds` of this clock's time.
  void advance(double seconds) {
    MFGPU_CHECK(seconds >= 0.0, "SimClock: cannot advance by negative time");
    now_ += seconds;
  }

  /// Wait until `time` (no-op if already past it).
  void advance_to(double time) {
    if (time > now_) now_ = time;
  }

  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace mfgpu
