// Virtual time. All performance numbers the benchmarks report are measured
// on SimClock instances, never on wall clock: the paper's hardware (Xeon
// 5160 + Tesla T10 over PCIe x8) is reproduced as a calibrated timing model,
// which makes every experiment deterministic and machine-independent.
#pragma once

#include "support/error.hpp"

namespace mfgpu {

/// Observer of every primitive operation applied to one SimClock (and, via
/// the stream hooks, to the streams of the device driven by that clock).
/// The schedule flight recorder (obs/schedule_record.hpp) implements this;
/// replaying the recorded operations in the same order folds to bitwise
/// identical times because each callback carries the original operands —
/// durations are never reconstructed by differencing (a + (b - a) == b is
/// not an IEEE-754 identity).
class ClockSink {
 public:
  virtual ~ClockSink() = default;

  /// advance(seconds) was applied.
  virtual void on_advance(double seconds) = 0;
  /// advance_to(target) was applied while the clock read `before`
  /// (called for no-op waits too: target <= before).
  virtual void on_wait(double target, double before) = 0;

  /// A device stream op was enqueued: it starts no earlier than `earliest`
  /// (already folded with the caller's clock/dependency times), runs for
  /// `duration`, and completed the stream at `done`. Default no-op so
  /// simple sinks need not care about streams.
  virtual void on_enqueue(int /*stream*/, double /*earliest*/,
                          double /*duration*/, double /*done*/) {}
  /// A synchronous (host-blocking) copy completed at `done` after waiting
  /// for dependency time `dep` and transferring for `duration`; the
  /// matching advance_to(done) follows immediately.
  virtual void on_sync_copy(double /*dep*/, double /*duration*/,
                            double /*done*/) {}
};

class SimClock {
 public:
  double now() const noexcept { return now_; }

  /// Spend `seconds` of this clock's time.
  void advance(double seconds) {
    MFGPU_CHECK(seconds >= 0.0, "SimClock: cannot advance by negative time");
    now_ += seconds;
    if (sink_ != nullptr) sink_->on_advance(seconds);
  }

  /// Wait until `time` (no-op if already past it).
  void advance_to(double time) {
    if (sink_ != nullptr) sink_->on_wait(time, now_);
    if (time > now_) now_ = time;
  }

  void reset() noexcept { now_ = 0.0; }

  /// Attach/detach a recorder. The clock does not own the sink.
  void set_sink(ClockSink* sink) noexcept { sink_ = sink; }
  ClockSink* sink() const noexcept { return sink_; }

 private:
  double now_ = 0.0;
  ClockSink* sink_ = nullptr;
};

}  // namespace mfgpu
