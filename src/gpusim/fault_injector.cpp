#include "gpusim/fault_injector.hpp"

#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "obs/trace_session.hpp"

namespace mfgpu {
namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void count_fault(FaultKind kind) {
  if (!obs::enabled()) return;
  obs::MetricsRegistry::global().increment(
      std::string("fault.injected.") + fault_kind_name(kind));
  // Injection markers are request-tagged instants in the trace: when a
  // serving request's work drew this fault, its causal tree shows exactly
  // where chaos struck (fault_kind_name returns a literal, so the span
  // name outlives the session).
  const std::int64_t now = obs::TraceSession::global().now_ns();
  obs::record_span("fault", fault_kind_name(kind), now, now,
                   obs::current_request_id(), obs::current_parent_span());
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::TransientKernel: return "transient_kernel";
    case FaultKind::TransferCorruption: return "transfer_corruption";
    case FaultKind::SpuriousOom: return "spurious_oom";
    case FaultKind::DeviceDeath: return "device_death";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(options), enabled_(options.any()) {
  MFGPU_CHECK(options_.transient_kernel_rate >= 0.0 &&
                  options_.transient_kernel_rate < 1.0,
              "FaultInjector: transient_kernel_rate must be in [0, 1)");
  MFGPU_CHECK(options_.transfer_corruption_rate >= 0.0 &&
                  options_.transfer_corruption_rate < 1.0,
              "FaultInjector: transfer_corruption_rate must be in [0, 1)");
  MFGPU_CHECK(options_.spurious_oom_rate >= 0.0 &&
                  options_.spurious_oom_rate < 1.0,
              "FaultInjector: spurious_oom_rate must be in [0, 1)");
  MFGPU_CHECK(options_.device_death_rate >= 0.0 &&
                  options_.device_death_rate < 1.0,
              "FaultInjector: device_death_rate must be in [0, 1)");
}

double FaultInjector::uniform(std::uint64_t seed, std::uint64_t scope,
                              std::uint64_t op) noexcept {
  const std::uint64_t h = mix64(seed ^ mix64(scope ^ mix64(op)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultInjector::draw() noexcept {
  return uniform(options_.seed, scope_, op_index_++);
}

FaultKind FaultInjector::sample(FaultSite site) {
  if (!enabled_ || suppress_depth_ > 0) return FaultKind::None;
  if (dead_) return FaultKind::DeviceDeath;
  ++stats_.sampled_ops;
  const double u = draw();
  // Stacked thresholds: death (usually rarest) claims the bottom of the
  // unit interval, the site-specific kind the band above it.
  if (u < options_.device_death_rate) {
    dead_ = true;
    ++stats_.device_death;
    count_fault(FaultKind::DeviceDeath);
    return FaultKind::DeviceDeath;
  }
  const double v = u - options_.device_death_rate;
  switch (site) {
    case FaultSite::Kernel:
      if (v < options_.transient_kernel_rate) {
        ++stats_.transient_kernel;
        count_fault(FaultKind::TransientKernel);
        return FaultKind::TransientKernel;
      }
      break;
    case FaultSite::Transfer:
      if (v < options_.transfer_corruption_rate) {
        ++stats_.transfer_corruption;
        count_fault(FaultKind::TransferCorruption);
        return FaultKind::TransferCorruption;
      }
      break;
    case FaultSite::Alloc:
      if (v < options_.spurious_oom_rate) {
        ++stats_.spurious_oom;
        count_fault(FaultKind::SpuriousOom);
        return FaultKind::SpuriousOom;
      }
      break;
  }
  return FaultKind::None;
}

void FaultInjector::reset() noexcept {
  dead_ = false;
  scope_ = 0;
  op_index_ = 0;
  stats_ = FaultInjectorStats{};
}

}  // namespace mfgpu
