#include "gpusim/gpublas.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "dense/potrf.hpp"
#include "gpusim/cost_class.hpp"
#include "obs/metrics.hpp"

namespace mfgpu {
namespace {

/// Per-kernel-class accounting: flops executed, simulated seconds charged,
/// and call counts, keyed as kernel.<prefix>.{flops,seconds,calls}.
void count_kernel(const char* prefix, double ops, double duration) {
  if (!obs::enabled()) return;
  auto& metrics = obs::MetricsRegistry::global();
  const std::string base = std::string("kernel.") + prefix;
  metrics.add(base + ".flops", ops);
  metrics.add(base + ".seconds", duration);
  metrics.increment(base + ".calls");
}

/// Enqueue a kernel: pay the host launch overhead, start when the stream is
/// free and every input matrix is available, mark outputs available at
/// completion.
void enqueue_kernel(const GpuExec& exec, double duration,
                    std::initializer_list<const DeviceMatrix*> inputs,
                    std::initializer_list<DeviceMatrix*> outputs) {
  {
    // The launch overhead is a TransferModel charge (driver cost).
    CostClassScope cls(CostClass::Transfer);
    exec.host->advance(exec.device->transfer().kernel_enqueue);
  }
  double earliest = exec.host->now();
  for (const DeviceMatrix* in : inputs) {
    earliest = std::max(earliest, in->available_at);
  }
  for (DeviceMatrix* out : outputs) {
    earliest = std::max(earliest, out->available_at);
  }
  const double done = exec.stream->enqueue(earliest, duration);
  if (ClockSink* sink = exec.host->sink()) {
    CostClassScope cls(CostClass::Gpu);
    sink->on_enqueue(exec.device->stream_index(*exec.stream), earliest,
                     duration, done);
  }
  for (DeviceMatrix* out : outputs) out->available_at = done;
}

/// Sample the injector for one kernel launch. A faulted launch still charges
/// its full enqueue + execution time (the wasted GPU time the fallback path
/// pays for) but skips the numeric work and throws.
void check_kernel_fault(const char* kernel, const GpuExec& exec, double ops,
                        double duration,
                        std::initializer_list<const DeviceMatrix*> inputs,
                        std::initializer_list<DeviceMatrix*> outputs) {
  const FaultKind fault =
      exec.device->fault_injector().sample(FaultSite::Kernel);
  if (fault == FaultKind::None) return;
  enqueue_kernel(exec, duration, inputs, outputs);
  count_kernel(kernel, ops, duration);
  throw DeviceFaultError(
      std::string(kernel) + ": injected " + fault_kind_name(fault),
      /*sticky=*/fault == FaultKind::DeviceDeath);
}

/// enqueue_kernel over dynamically sized dependency lists (one aggregated
/// launch touching every member's blocks).
void enqueue_kernel_batched(const GpuExec& exec, double duration,
                            const std::vector<const DeviceMatrix*>& inputs,
                            const std::vector<DeviceMatrix*>& outputs) {
  {
    CostClassScope cls(CostClass::Transfer);
    exec.host->advance(exec.device->transfer().kernel_enqueue);
  }
  double earliest = exec.host->now();
  for (const DeviceMatrix* in : inputs) {
    earliest = std::max(earliest, in->available_at);
  }
  for (DeviceMatrix* out : outputs) {
    earliest = std::max(earliest, out->available_at);
  }
  const double done = exec.stream->enqueue(earliest, duration);
  if (ClockSink* sink = exec.host->sink()) {
    CostClassScope cls(CostClass::Gpu);
    sink->on_enqueue(exec.device->stream_index(*exec.stream), earliest,
                     duration, done);
  }
  for (DeviceMatrix* out : outputs) out->available_at = done;
}

/// Per-member fault sampling for one aggregated launch, each member under
/// its own resumed scope so the schedule is independent of batch
/// composition. Freshly faulted members are marked in `skip` and appended
/// to `faulted`; they stay `active` (their wasted device time is charged)
/// but run no numeric work.
struct BatchFaults {
  bool any = false;    ///< at least one member was live at entry
  bool death = false;  ///< some member drew DeviceDeath (throw after charge)
  std::vector<char> active;  ///< live at entry: charged by this launch
};

BatchFaults sample_batch_faults(FaultInjector& injector,
                                std::span<const std::uint64_t> scopes,
                                std::span<std::uint64_t> fault_ops,
                                std::span<char> skip,
                                std::vector<BatchFault>& faulted) {
  BatchFaults out;
  out.active.assign(scopes.size(), 0);
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    if (skip[i] != 0) continue;
    out.active[i] = 1;
    out.any = true;
    injector.resume_scope(scopes[i], fault_ops[i]);
    const FaultKind fault = injector.sample(FaultSite::Kernel);
    fault_ops[i] = injector.op_index();
    if (fault == FaultKind::None) continue;
    skip[i] = 1;
    faulted.push_back(BatchFault{i, fault});
    if (fault == FaultKind::DeviceDeath) out.death = true;
  }
  return out;
}

[[noreturn]] void throw_batch_death(const char* kernel) {
  throw DeviceFaultError(std::string(kernel) + ": injected " +
                             fault_kind_name(FaultKind::DeviceDeath),
                         /*sticky=*/true);
}

}  // namespace

DevBlock dev_whole(DeviceMatrix& m) {
  return DevBlock{&m, 0, 0, m.rows(), m.cols()};
}

DevBlock dev_block(DeviceMatrix& m, index_t i0, index_t j0, index_t rows,
                   index_t cols) {
  return DevBlock{&m, i0, j0, rows, cols};
}

double gpu_potrf(const GpuExec& exec, DevBlock a, index_t column_offset) {
  MFGPU_CHECK(a.rows == a.cols, "gpu_potrf: block must be square");
  const auto ops = static_cast<double>(potrf_ops(a.rows));
  const double duration =
      exec.device->model().potrf.time(ops, static_cast<double>(a.rows));
  check_kernel_fault("gpu.potrf", exec, ops, duration, {}, {a.mat});
  enqueue_kernel(exec, duration, {}, {a.mat});
  count_kernel("gpu.potrf", ops, duration);
  if (exec.device->numeric()) {
    potrf_unblocked<float>(a.view(), column_offset);
  }
  return duration;
}

double gpu_trsm(const GpuExec& exec, DevBlock tri, DevBlock rhs) {
  MFGPU_CHECK(tri.rows == tri.cols && tri.cols == rhs.cols,
              "gpu_trsm: shape mismatch");
  const auto ops = static_cast<double>(trsm_ops(rhs.rows, rhs.cols));
  const double min_dim = static_cast<double>(std::min(rhs.rows, rhs.cols));
  const double duration = exec.device->model().trsm.time(ops, min_dim);
  check_kernel_fault("gpu.trsm", exec, ops, duration, {tri.mat}, {rhs.mat});
  enqueue_kernel(exec, duration, {tri.mat}, {rhs.mat});
  count_kernel("gpu.trsm", ops, duration);
  if (exec.device->numeric()) {
    trsm<float>(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                1.0f, tri.view(), rhs.view());
  }
  return duration;
}

double gpu_syrk(const GpuExec& exec, float alpha, DevBlock a, DevBlock c) {
  MFGPU_CHECK(c.rows == c.cols && a.rows == c.rows, "gpu_syrk: shape mismatch");
  const auto ops = static_cast<double>(syrk_ops(c.rows, a.cols));
  const double min_dim = static_cast<double>(std::min(c.rows, a.cols));
  const double duration = exec.device->model().syrk.time(ops, min_dim);
  check_kernel_fault("gpu.syrk", exec, ops, duration, {a.mat}, {c.mat});
  enqueue_kernel(exec, duration, {a.mat}, {c.mat});
  count_kernel("gpu.syrk", ops, duration);
  if (exec.device->numeric()) {
    syrk_lower<float>(alpha, a.view(), 1.0f, c.view());
  }
  return duration;
}

double gpu_gemm_nt(const GpuExec& exec, float alpha, DevBlock a, DevBlock b,
                   DevBlock c) {
  MFGPU_CHECK(a.rows == c.rows && b.rows == c.cols && a.cols == b.cols,
              "gpu_gemm_nt: shape mismatch");
  const auto ops = static_cast<double>(gemm_ops(c.rows, c.cols, a.cols));
  const double min_dim =
      static_cast<double>(std::min({c.rows, c.cols, a.cols}));
  const double duration = exec.device->model().gemm.time(ops, min_dim);
  check_kernel_fault("gpu.gemm", exec, ops, duration, {a.mat, b.mat},
                     {c.mat});
  enqueue_kernel(exec, duration, {a.mat, b.mat}, {c.mat});
  count_kernel("gpu.gemm", ops, duration);
  if (exec.device->numeric()) {
    gemm<float>(Trans::NoTrans, Trans::Transpose, alpha, a.view(), b.view(),
                1.0f, c.view());
  }
  return duration;
}

double gpu_potrf_batched(const GpuExec& exec, std::span<const DevBlock> as,
                         std::span<const index_t> column_offsets,
                         std::span<const std::uint64_t> scopes,
                         std::span<std::uint64_t> fault_ops,
                         std::span<char> skip,
                         std::vector<BatchFault>& faulted) {
  const std::size_t n = as.size();
  MFGPU_CHECK(column_offsets.size() == n && scopes.size() == n &&
                  fault_ops.size() == n && skip.size() == n,
              "gpu_potrf_batched: span size mismatch");
  const BatchFaults faults = sample_batch_faults(
      exec.device->fault_injector(), scopes, fault_ops, skip, faulted);
  if (!faults.any) return 0.0;
  const KernelRateModel& model = exec.device->model().potrf;
  double total_ops = 0.0;
  double duration = model.batch_overhead();
  std::vector<DeviceMatrix*> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.active[i] == 0) continue;
    MFGPU_CHECK(as[i].rows == as[i].cols, "gpu_potrf_batched: non-square");
    const auto ops = static_cast<double>(potrf_ops(as[i].rows));
    total_ops += ops;
    duration += model.marginal_time(ops, static_cast<double>(as[i].rows));
    outputs.push_back(as[i].mat);
  }
  enqueue_kernel_batched(exec, duration, {}, outputs);
  count_kernel("gpu.potrf", total_ops, duration);
  if (faults.death) throw_batch_death("gpu.potrf");
  return duration;
}

double gpu_trsm_batched(const GpuExec& exec, std::span<const DevBlock> tris,
                        std::span<const DevBlock> rhss,
                        std::span<const std::uint64_t> scopes,
                        std::span<std::uint64_t> fault_ops,
                        std::span<char> skip,
                        std::vector<BatchFault>& faulted) {
  const std::size_t n = tris.size();
  MFGPU_CHECK(rhss.size() == n && scopes.size() == n && fault_ops.size() == n &&
                  skip.size() == n,
              "gpu_trsm_batched: span size mismatch");
  const BatchFaults faults = sample_batch_faults(
      exec.device->fault_injector(), scopes, fault_ops, skip, faulted);
  if (!faults.any) return 0.0;
  const KernelRateModel& model = exec.device->model().trsm;
  double total_ops = 0.0;
  double duration = model.batch_overhead();
  std::vector<const DeviceMatrix*> inputs;
  std::vector<DeviceMatrix*> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.active[i] == 0) continue;
    MFGPU_CHECK(tris[i].rows == tris[i].cols && tris[i].cols == rhss[i].cols,
                "gpu_trsm_batched: shape mismatch");
    const auto ops = static_cast<double>(trsm_ops(rhss[i].rows, rhss[i].cols));
    const double min_dim =
        static_cast<double>(std::min(rhss[i].rows, rhss[i].cols));
    total_ops += ops;
    duration += model.marginal_time(ops, min_dim);
    inputs.push_back(tris[i].mat);
    outputs.push_back(rhss[i].mat);
  }
  enqueue_kernel_batched(exec, duration, inputs, outputs);
  count_kernel("gpu.trsm", total_ops, duration);
  if (faults.death) throw_batch_death("gpu.trsm");
  return duration;
}

double gpu_syrk_batched(const GpuExec& exec, float /*alpha*/,
                        std::span<const DevBlock> as,
                        std::span<const DevBlock> cs,
                        std::span<const std::uint64_t> scopes,
                        std::span<std::uint64_t> fault_ops,
                        std::span<char> skip,
                        std::vector<BatchFault>& faulted) {
  const std::size_t n = as.size();
  MFGPU_CHECK(cs.size() == n && scopes.size() == n && fault_ops.size() == n &&
                  skip.size() == n,
              "gpu_syrk_batched: span size mismatch");
  const BatchFaults faults = sample_batch_faults(
      exec.device->fault_injector(), scopes, fault_ops, skip, faulted);
  if (!faults.any) return 0.0;
  const KernelRateModel& model = exec.device->model().syrk;
  double total_ops = 0.0;
  double duration = model.batch_overhead();
  std::vector<const DeviceMatrix*> inputs;
  std::vector<DeviceMatrix*> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.active[i] == 0) continue;
    MFGPU_CHECK(cs[i].rows == cs[i].cols && as[i].rows == cs[i].rows,
                "gpu_syrk_batched: shape mismatch");
    const auto ops = static_cast<double>(syrk_ops(cs[i].rows, as[i].cols));
    const double min_dim =
        static_cast<double>(std::min(cs[i].rows, as[i].cols));
    total_ops += ops;
    duration += model.marginal_time(ops, min_dim);
    inputs.push_back(as[i].mat);
    outputs.push_back(cs[i].mat);
  }
  enqueue_kernel_batched(exec, duration, inputs, outputs);
  count_kernel("gpu.syrk", total_ops, duration);
  if (faults.death) throw_batch_death("gpu.syrk");
  return duration;
}

double host_potrf(const HostExec& exec, MatrixView<double> a,
                  index_t column_offset) {
  const auto ops = static_cast<double>(potrf_ops(a.rows()));
  const double duration =
      exec.model->potrf.time(ops, static_cast<double>(a.rows()));
  {
    CostClassScope cls(CostClass::Host);
    exec.clock->advance(duration);
  }
  count_kernel("host.potrf", ops, duration);
  if (exec.numeric) potrf<double>(a, 64, column_offset);
  return duration;
}

double host_trsm(const HostExec& exec, MatrixView<const double> tri,
                 MatrixView<double> rhs) {
  const auto ops = static_cast<double>(trsm_ops(rhs.rows(), rhs.cols()));
  const double min_dim =
      static_cast<double>(std::min(rhs.rows(), rhs.cols()));
  const double duration = exec.model->trsm.time(ops, min_dim);
  {
    CostClassScope cls(CostClass::Host);
    exec.clock->advance(duration);
  }
  count_kernel("host.trsm", ops, duration);
  if (exec.numeric) {
    trsm<double>(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                 1.0, tri, rhs);
  }
  return duration;
}

double host_syrk(const HostExec& exec, double alpha,
                 MatrixView<const double> a, MatrixView<double> c) {
  const auto ops = static_cast<double>(syrk_ops(c.rows(), a.cols()));
  const double min_dim = static_cast<double>(std::min(c.rows(), a.cols()));
  const double duration = exec.model->syrk.time(ops, min_dim);
  {
    CostClassScope cls(CostClass::Host);
    exec.clock->advance(duration);
  }
  count_kernel("host.syrk", ops, duration);
  if (exec.numeric) syrk_lower<double>(alpha, a, 1.0, c);
  return duration;
}

double host_gemm_nt(const HostExec& exec, double alpha,
                    MatrixView<const double> a, MatrixView<const double> b,
                    MatrixView<double> c) {
  const auto ops = static_cast<double>(gemm_ops(c.rows(), c.cols(), a.cols()));
  const double min_dim =
      static_cast<double>(std::min({c.rows(), c.cols(), a.cols()}));
  const double duration = exec.model->gemm.time(ops, min_dim);
  {
    CostClassScope cls(CostClass::Host);
    exec.clock->advance(duration);
  }
  count_kernel("host.gemm", ops, duration);
  if (exec.numeric) {
    gemm<double>(Trans::NoTrans, Trans::Transpose, alpha, a, b, 1.0, c);
  }
  return duration;
}

double host_assembly_rate() { return 1.2e9; }

double host_apply_update(const HostExec& exec,
                         MatrixView<const double> product,
                         MatrixView<double> c) {
  MFGPU_CHECK(product.rows() == c.rows() && product.cols() == c.cols(),
              "host_apply_update: shape mismatch");
  const index_t n = c.rows();
  const double entries =
      0.5 * static_cast<double>(n) * static_cast<double>(n + 1);
  const double duration = entries / host_assembly_rate();
  {
    CostClassScope cls(CostClass::Assembly);
    exec.clock->advance(duration);
  }
  if (exec.numeric) {
    for (index_t j = 0; j < c.cols(); ++j) {
      for (index_t i = j; i < n; ++i) c(i, j) -= product(i, j);
    }
  }
  return duration;
}

double host_assembly_cost(const HostExec& exec, double entries) {
  MFGPU_CHECK(entries >= 0.0, "host_assembly_cost: negative entries");
  const double duration = entries / host_assembly_rate();
  CostClassScope cls(CostClass::Assembly);
  exec.clock->advance(duration);
  return duration;
}

}  // namespace mfgpu
