#include "gpusim/device.hpp"

#include <limits>

#include "obs/metrics.hpp"

namespace mfgpu {
namespace {

/// PCIe accounting shared by all four copy paths.
void count_transfer(const char* direction, double bytes, double duration) {
  if (!mfgpu::obs::enabled()) return;
  auto& metrics = mfgpu::obs::MetricsRegistry::global();
  metrics.add("gpusim.pcie.bytes", bytes);
  metrics.add("gpusim.pcie.seconds", duration);
  metrics.add(std::string("gpusim.pcie.") + direction + ".bytes", bytes);
  metrics.increment(std::string("gpusim.pcie.") + direction + ".copies");
}

double matrix_bytes(index_t rows, index_t cols) {
  return static_cast<double>(rows) * static_cast<double>(cols) *
         static_cast<double>(sizeof(float));
}

[[noreturn]] void throw_transfer_death() {
  throw DeviceFaultError("gpusim: device died during transfer",
                         /*sticky=*/true);
}

}  // namespace

Device::Device() : Device(Options{}) {}

Device::Device(Options options)
    : options_(options),
      streams_(3),
      device_pool_("device", options.transfer.device_alloc_latency, 0.0,
                   options.memory_bytes, options.pool_reuse),
      pinned_pool_("pinned", options.transfer.pinned_alloc_latency,
                   options.transfer.pinned_alloc_per_byte,
                   // Pinned memory is host RAM; cap it generously.
                   std::int64_t{32} * 1024 * 1024 * 1024,
                   options.pool_reuse),
      injector_(options.faults) {}

void Device::check_alloc_fault(const char* what) {
  switch (injector_.sample(FaultSite::Alloc)) {
    case FaultKind::DeviceDeath:
      throw DeviceFaultError(std::string(what) + ": device died",
                             /*sticky=*/true);
    case FaultKind::SpuriousOom:
      throw DeviceOutOfMemoryError(std::string(what) +
                                   ": injected spurious out-of-memory");
    default:
      break;
  }
}

DeviceMatrix Device::allocate(index_t rows, index_t cols,
                              const std::string& slot, SimClock& host) {
  MFGPU_CHECK(rows >= 0 && cols >= 0, "Device::allocate: negative dims");
  check_alloc_fault("Device::allocate");
  const auto bytes = static_cast<std::int64_t>(matrix_bytes(rows, cols));
  {
    CostClassScope cls(CostClass::Alloc);
    host.advance(device_pool_.acquire(slot, bytes));
  }
  DeviceMatrix m;
  m.data = options_.numeric ? Matrix<float>(rows, cols, 0.0f)
                            : Matrix<float>(0, 0);
  m.shape_rows = rows;
  m.shape_cols = cols;
  m.available_at = host.now();
  return m;
}

double Device::acquire_pinned(const std::string& slot, std::int64_t bytes,
                              SimClock& host) {
  check_alloc_fault("Device::acquire_pinned");
  const double cost = pinned_pool_.acquire(slot, bytes);
  CostClassScope cls(CostClass::Alloc);
  host.advance(cost);
  return cost;
}

MatrixView<float> Device::device_block(DeviceMatrix& m, index_t i0, index_t j0,
                                       index_t rows, index_t cols) const {
  return m.data.view().block(i0, j0, rows, cols);
}

double Device::copy_to_device_sync(MatrixView<const double> src,
                                   DeviceMatrix& dst, index_t i0, index_t j0,
                                   SimClock& host) {
  const FaultKind fault = injector_.sample(FaultSite::Transfer);
  if (fault == FaultKind::DeviceDeath) throw_transfer_death();
  const double bytes = matrix_bytes(src.rows(), src.cols());
  bytes_transferred_ += bytes;
  if (options_.numeric) {
    auto block = device_block(dst, i0, j0, src.rows(), src.cols());
    copy_into<float>(src, block);
    if (fault == FaultKind::TransferCorruption && block.rows() > 0 &&
        block.cols() > 0) {
      block(0, 0) = std::numeric_limits<float>::quiet_NaN();
    }
  }
  const double duration = transfer().sync_copy_time(bytes);
  count_transfer("h2d", bytes, duration);
  // A pageable copy blocks the host and serializes with prior device work
  // touching the destination.
  const double done = std::max(host.now(), dst.available_at) + duration;
  CostClassScope cls(CostClass::Transfer);
  if (ClockSink* sink = host.sink()) {
    sink->on_sync_copy(dst.available_at, duration, done);
  }
  host.advance_to(done);
  dst.available_at = done;
  return duration;
}

double Device::copy_from_device_sync(const DeviceMatrix& src, index_t i0,
                                     index_t j0, MatrixView<double> dst,
                                     SimClock& host) {
  const FaultKind fault = injector_.sample(FaultSite::Transfer);
  if (fault == FaultKind::DeviceDeath) throw_transfer_death();
  const double bytes = matrix_bytes(dst.rows(), dst.cols());
  bytes_transferred_ += bytes;
  if (options_.numeric) {
    auto block = const_cast<DeviceMatrix&>(src).data.view().block(
        i0, j0, dst.rows(), dst.cols());
    copy_into<double>(
        MatrixView<const float>(block.data(), block.rows(), block.cols(),
                                block.ld()),
        dst);
    if (fault == FaultKind::TransferCorruption && dst.rows() > 0 &&
        dst.cols() > 0) {
      dst(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  const double duration = transfer().sync_copy_time(bytes);
  count_transfer("d2h", bytes, duration);
  const double done = std::max(host.now(), src.available_at) + duration;
  CostClassScope cls(CostClass::Transfer);
  if (ClockSink* sink = host.sink()) {
    sink->on_sync_copy(src.available_at, duration, done);
  }
  host.advance_to(done);
  return duration;
}

double Device::copy_to_device_async(MatrixView<const double> src,
                                    DeviceMatrix& dst, index_t i0, index_t j0,
                                    Stream& stream, SimClock& host) {
  const FaultKind fault = injector_.sample(FaultSite::Transfer);
  if (fault == FaultKind::DeviceDeath) throw_transfer_death();
  const double bytes = matrix_bytes(src.rows(), src.cols());
  bytes_transferred_ += bytes;
  if (options_.numeric) {
    auto block = device_block(dst, i0, j0, src.rows(), src.cols());
    copy_into<float>(src, block);
    if (fault == FaultKind::TransferCorruption && block.rows() > 0 &&
        block.cols() > 0) {
      block(0, 0) = std::numeric_limits<float>::quiet_NaN();
    }
  }
  CostClassScope cls(CostClass::Transfer);
  host.advance(transfer().enqueue_overhead);
  const double duration = transfer().async_copy_time(bytes);
  count_transfer("h2d", bytes, duration);
  const double earliest = std::max(host.now(), dst.available_at);
  const double done = stream.enqueue(earliest, duration);
  if (ClockSink* sink = host.sink()) {
    sink->on_enqueue(stream_index(stream), earliest, duration, done);
  }
  dst.available_at = done;
  return duration;
}

double Device::copy_from_device_async(const DeviceMatrix& src, index_t i0,
                                      index_t j0, MatrixView<double> dst,
                                      Stream& stream, SimClock& host) {
  const FaultKind fault = injector_.sample(FaultSite::Transfer);
  if (fault == FaultKind::DeviceDeath) throw_transfer_death();
  const double bytes = matrix_bytes(dst.rows(), dst.cols());
  bytes_transferred_ += bytes;
  if (options_.numeric) {
    auto block = const_cast<DeviceMatrix&>(src).data.view().block(
        i0, j0, dst.rows(), dst.cols());
    copy_into<double>(
        MatrixView<const float>(block.data(), block.rows(), block.cols(),
                                block.ld()),
        dst);
    if (fault == FaultKind::TransferCorruption && dst.rows() > 0 &&
        dst.cols() > 0) {
      dst(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  CostClassScope cls(CostClass::Transfer);
  host.advance(transfer().enqueue_overhead);
  const double duration = transfer().async_copy_time(bytes);
  count_transfer("d2h", bytes, duration);
  // Reads only: the copy waits for the producer but does not bump
  // available_at (write-after-read hazards are not modeled).
  const double earliest = std::max(host.now(), src.available_at);
  const double done = stream.enqueue(earliest, duration);
  if (ClockSink* sink = host.sink()) {
    sink->on_enqueue(stream_index(stream), earliest, duration, done);
  }
  return duration;
}

double Device::copy_to_device_async_batched(
    std::span<const H2dCopy> blocks, std::span<const std::uint64_t> scopes,
    std::span<std::uint64_t> fault_ops, std::span<const char> skip,
    Stream& stream, SimClock& host) {
  MFGPU_CHECK(blocks.size() == scopes.size() &&
                  blocks.size() == fault_ops.size() &&
                  blocks.size() == skip.size(),
              "copy_to_device_async_batched: span size mismatch");
  double bytes = 0.0;
  double earliest_dep = 0.0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (skip[i] != 0) continue;
    injector_.resume_scope(scopes[i], fault_ops[i]);
    const FaultKind fault = injector_.sample(FaultSite::Transfer);
    fault_ops[i] = injector_.op_index();
    if (fault == FaultKind::DeviceDeath) throw_transfer_death();
    const H2dCopy& b = blocks[i];
    bytes += matrix_bytes(b.src.rows(), b.src.cols());
    if (options_.numeric) {
      auto block = device_block(*b.dst, b.i0, b.j0, b.src.rows(),
                                b.src.cols());
      copy_into<float>(b.src, block);
      if (fault == FaultKind::TransferCorruption && block.rows() > 0 &&
          block.cols() > 0) {
        block(0, 0) = std::numeric_limits<float>::quiet_NaN();
      }
    }
    earliest_dep = std::max(earliest_dep, b.dst->available_at);
  }
  if (bytes == 0.0) return 0.0;
  bytes_transferred_ += bytes;
  CostClassScope cls(CostClass::Transfer);
  host.advance(transfer().enqueue_overhead);
  const double duration = transfer().async_copy_time(bytes);
  count_transfer("h2d", bytes, duration);
  const double earliest = std::max(host.now(), earliest_dep);
  const double done = stream.enqueue(earliest, duration);
  if (ClockSink* sink = host.sink()) {
    sink->on_enqueue(stream_index(stream), earliest, duration, done);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (skip[i] == 0) blocks[i].dst->available_at = done;
  }
  return duration;
}

double Device::copy_from_device_async_batched(
    std::span<const D2hCopy> blocks, std::span<const std::uint64_t> scopes,
    std::span<std::uint64_t> fault_ops, std::span<const char> skip,
    Stream& stream, SimClock& host) {
  MFGPU_CHECK(blocks.size() == scopes.size() &&
                  blocks.size() == fault_ops.size() &&
                  blocks.size() == skip.size(),
              "copy_from_device_async_batched: span size mismatch");
  double bytes = 0.0;
  double earliest_dep = 0.0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (skip[i] != 0) continue;
    injector_.resume_scope(scopes[i], fault_ops[i]);
    const FaultKind fault = injector_.sample(FaultSite::Transfer);
    fault_ops[i] = injector_.op_index();
    if (fault == FaultKind::DeviceDeath) throw_transfer_death();
    const D2hCopy& b = blocks[i];
    bytes += matrix_bytes(b.dst.rows(), b.dst.cols());
    if (options_.numeric) {
      auto block = const_cast<DeviceMatrix*>(b.src)->data.view().block(
          b.i0, b.j0, b.dst.rows(), b.dst.cols());
      MatrixView<double> dst = b.dst;
      copy_into<double>(
          MatrixView<const float>(block.data(), block.rows(), block.cols(),
                                  block.ld()),
          dst);
      if (fault == FaultKind::TransferCorruption && dst.rows() > 0 &&
          dst.cols() > 0) {
        dst(0, 0) = std::numeric_limits<double>::quiet_NaN();
      }
    }
    earliest_dep = std::max(earliest_dep, b.src->available_at);
  }
  if (bytes == 0.0) return 0.0;
  bytes_transferred_ += bytes;
  CostClassScope cls(CostClass::Transfer);
  host.advance(transfer().enqueue_overhead);
  const double duration = transfer().async_copy_time(bytes);
  count_transfer("d2h", bytes, duration);
  // Reads only: the coalesced copy waits for every producer but does not
  // bump any available_at (write-after-read hazards are not modeled).
  const double earliest = std::max(host.now(), earliest_dep);
  const double done = stream.enqueue(earliest, duration);
  if (ClockSink* sink = host.sink()) {
    sink->on_enqueue(stream_index(stream), earliest, duration, done);
  }
  return duration;
}

void Device::synchronize(SimClock& host) {
  for (const auto& s : streams_) {
    CostClassScope cls(stream_stall_class(s));
    host.advance_to(s.ready_at());
  }
}

void Device::reset() {
  for (auto& s : streams_) s.reset();
  device_pool_.reset();
  pinned_pool_.reset();
  injector_.reset();
  bytes_transferred_ = 0.0;
}

}  // namespace mfgpu
