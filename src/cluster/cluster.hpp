// Simulated distributed-cluster factorization — the paper's named future
// work ("a distributed-memory version of the solver") executed as real
// numerics over simulated nodes.
//
// Model
//   - Elimination subtrees map to simulated cluster nodes: the proportional
//     mapping seeds the placement and a greedy refinement trades residual
//     load imbalance against interconnect cost (cluster/placement.hpp).
//   - Each node owns its full execution state — a FactorContext (virtual
//     host clock), optionally a private simulated Device, an FuExecutor,
//     and a StackArena — exactly like one worker of factorize_parallel.
//   - A child placed on another node ships its PACKED update matrix to the
//     parent's node as a sized message over an InterconnectModel link
//     (sched/interconnect.hpp). Messages serialize on the producer's
//     egress lane and the consumer's ingress lane (one virtual-time lane
//     each per node), so transfers overlap compute on both sides instead
//     of charging the whole wire time to the critical path.
//   - The asynchronous fan-both engine has NO global level barriers: any
//     task whose children's updates have (virtually) arrived may run, and
//     the engine always picks the ready task with the earliest estimated
//     start (critical-path bottom level breaks ties). The LevelSync engine
//     runs the same numerics with a barrier after every elimination-tree
//     level — the reference the fan-both speedup is measured against
//     (bench/bench_cluster_scaling.cpp).
//
// Determinism: children are extend-added in the serial driver's order
// (descending child index) and device-fault fates are a pure function of
// (seed, front, op) — never of placement — so the cluster factor is
// BITWISE identical to the serial factorize() for every node count, link
// speed, engine, and non-death fault seed.
//
// Node death (chaos): node_death_rate > 0 draws a deterministic death
// point per node from death_seed; a dead node's unexecuted tasks are
// re-placed onto the least-loaded survivor (its already-published updates
// remain readable — checkpointed messages). Re-placement never changes the
// numerics, only the simulated schedule.
//
// Aggregated small-front batching (multifrontal/batched.hpp) is a
// per-node device concern orthogonal to this simulation; the cluster
// engine always dispatches per-front and ignores FactorizeOptions::
// batching (the batched factor is bitwise identical anyway).
#pragma once

#include <cstdint>
#include <string>

#include "cluster/placement.hpp"
#include "multifrontal/parallel.hpp"
#include "sched/interconnect.hpp"

namespace mfgpu {

enum class ClusterEngine {
  FanBoth = 0,   ///< asynchronous: no global barriers (the default)
  LevelSync = 1  ///< barrier after every elimination-tree level
};

const char* cluster_engine_name(ClusterEngine engine) noexcept;

/// Knobs for the simulated cluster (SolverOptions::cluster, the
/// `--cluster=` CLI flag, and serve-side per-request overrides funnel
/// here). num_nodes == 0 disables the cluster path entirely.
struct ClusterOptions {
  /// Simulated node count; 0 = cluster path off.
  int num_nodes = 0;
  /// Inter-node link for update-matrix messages.
  InterconnectModel link = infiniband_link();
  ClusterEngine engine = ClusterEngine::FanBoth;
  /// Refine the proportional placement for interconnect cost.
  bool refine_placement = true;
  /// Give every node a private simulated GPU (hybrid dispatch); off = all
  /// nodes run host-only P1.
  bool nodes_have_gpu = true;
  /// Chaos: probability each node dies mid-run (deterministic per
  /// death_seed; at least one node always survives).
  double node_death_rate = 0.0;
  std::uint64_t death_seed = 0;

  bool enabled() const noexcept { return num_nodes > 0; }

  friend bool operator==(const ClusterOptions&,
                         const ClusterOptions&) = default;
};

/// Parse a cluster spec: "off" | "<nodes>[,<token>...]" where each token is
/// an engine name ("fanboth" | "levelsync"), "norefine", "nogpu", or part
/// of a link spec handed to parse_link ("shared" | "infiniband" |
/// "gigabit" | "<bandwidth>,<latency>"). Examples:
///   "4"  "8,gigabit"  "4,levelsync,1e9,5e-6"  "2,nogpu,shared"
/// Throws InvalidArgumentError on malformed specs.
ClusterOptions parse_cluster(const std::string& spec);

/// Short human-readable description ("4 nodes, fan-both, infiniband").
std::string cluster_description(const ClusterOptions& options);

/// Simulated-schedule outcomes of one cluster factorization.
struct ClusterStats {
  int num_nodes = 0;
  ClusterEngine engine = ClusterEngine::FanBoth;
  double makespan = 0.0;           ///< max node virtual clock
  double max_node_seconds = 0.0;   ///< busiest node's clock (== makespan)
  /// Interconnect traffic: cross-node update-matrix messages actually sent.
  std::int64_t messages = 0;
  double bytes_on_wire = 0.0;
  double send_busy_seconds = 0.0;  ///< total egress-lane busy time
  /// Placement objective (cluster/placement.hpp).
  double placement_seed_cost = 0.0;
  double placement_refined_cost = 0.0;
  int placement_moves = 0;
  /// Chaos outcomes.
  int node_deaths = 0;
  std::int64_t replaced_tasks = 0;
};

struct ClusterFactorizeOptions {
  ClusterOptions cluster;
  FactorizeOptions numeric;  ///< batching is ignored (see header comment)
  ExecutorOptions executor;
  /// Template for each GPU-bearing node's private device (fault injection
  /// included — per-front fault fates stay placement-independent).
  Device::Options device;
  /// Optional schedule flight recorder: one lane per node. Remote message
  /// arrivals are recorded as Transfer-class waits, so the critical-path
  /// analyzer attributes wire stalls and what-if replay scales them with
  /// transfer_scale. The `numeric.recorder` field is ignored here.
  obs::ScheduleRecorder* recorder = nullptr;
};

/// Factor `analysis` on the simulated cluster. Matches factorize()'s
/// contract (panels, trace, error propagation); trace.total_time is the
/// cluster's virtual makespan. `make_executor` builds each node's executor
/// (default: GPU nodes dispatch the paper's baseline hybrid, CPU nodes run
/// P1); `stats_out` (optional) receives the schedule/traffic statistics.
FactorizeResult factorize_cluster(const Analysis& analysis,
                                  const ClusterFactorizeOptions& options = {},
                                  const WorkerExecutorFactory& make_executor = {},
                                  ClusterStats* stats_out = nullptr);

}  // namespace mfgpu
