#include "cluster/placement.hpp"

#include <algorithm>
#include <limits>

#include "policy/policy.hpp"
#include "sched/proportional_map.hpp"

namespace mfgpu {
namespace {

std::vector<double> task_seconds(const TaskGraph& graph,
                                 const PlacementOptions& options) {
  std::vector<double> seconds(static_cast<std::size_t>(graph.num_tasks), 0.0);
  for (index_t t = 0; t < graph.num_tasks; ++t) {
    const double work =
        fu_total_ops(graph.ms[static_cast<std::size_t>(t)],
                     graph.ks[static_cast<std::size_t>(t)]) +
        graph.assembly_entries[static_cast<std::size_t>(t)];
    seconds[static_cast<std::size_t>(t)] = work / options.ops_per_second;
  }
  return seconds;
}

double max_load(const std::vector<double>& load) {
  double m = 0.0;
  for (double l : load) m = std::max(m, l);
  return m;
}

}  // namespace

double placement_cost(const TaskGraph& graph, const std::vector<int>& node_of,
                      const PlacementOptions& options) {
  const std::vector<double> seconds = task_seconds(graph, options);
  std::vector<double> load(static_cast<std::size_t>(options.num_nodes), 0.0);
  double comm = 0.0;
  for (index_t t = 0; t < graph.num_tasks; ++t) {
    load[static_cast<std::size_t>(node_of[static_cast<std::size_t>(t)])] +=
        seconds[static_cast<std::size_t>(t)];
    const index_t p = graph.parent[static_cast<std::size_t>(t)];
    if (p != -1 && node_of[static_cast<std::size_t>(t)] !=
                       node_of[static_cast<std::size_t>(p)]) {
      comm += options.link.transfer_time(graph.ms[static_cast<std::size_t>(t)]);
    }
  }
  return max_load(load) + comm;
}

PlacementResult place_subtrees(const TaskGraph& graph,
                               const PlacementOptions& options) {
  MFGPU_CHECK(options.num_nodes > 0, "place_subtrees: need nodes");
  PlacementResult result;
  result.node_of = proportional_mapping(graph, options.num_nodes);
  result.seed_cost = placement_cost(graph, result.node_of, options);
  result.refined_cost = result.seed_cost;
  if (!options.refine || options.num_nodes == 1 || graph.num_tasks == 0) {
    return result;
  }

  const std::vector<double> seconds = task_seconds(graph, options);
  std::vector<int>& node_of = result.node_of;

  // Incremental objective state: per-node compute load and the total
  // cross-edge transfer seconds.
  std::vector<double> load(static_cast<std::size_t>(options.num_nodes), 0.0);
  std::vector<double> subtree_seconds(
      static_cast<std::size_t>(graph.num_tasks), 0.0);
  double comm = 0.0;
  for (index_t t = 0; t < graph.num_tasks; ++t) {
    load[static_cast<std::size_t>(node_of[static_cast<std::size_t>(t)])] +=
        seconds[static_cast<std::size_t>(t)];
    subtree_seconds[static_cast<std::size_t>(t)] +=
        seconds[static_cast<std::size_t>(t)];
    const index_t p = graph.parent[static_cast<std::size_t>(t)];
    if (p != -1) {
      subtree_seconds[static_cast<std::size_t>(p)] +=
          subtree_seconds[static_cast<std::size_t>(t)];
      if (node_of[static_cast<std::size_t>(t)] !=
          node_of[static_cast<std::size_t>(p)]) {
        comm +=
            options.link.transfer_time(graph.ms[static_cast<std::size_t>(t)]);
      }
    }
  }

  // uniform[t]: the single node the whole subtree of t sits on, or -1 when
  // it straddles nodes. Only uniform subtrees move (moving one changes
  // exactly one cross edge — its root's message to the parent).
  auto recompute_uniform = [&](std::vector<int>& uniform) {
    for (index_t t = 0; t < graph.num_tasks; ++t) {
      int u = node_of[static_cast<std::size_t>(t)];
      for (index_t c : graph.children[static_cast<std::size_t>(t)]) {
        if (uniform[static_cast<std::size_t>(c)] != u) u = -1;
      }
      uniform[static_cast<std::size_t>(t)] = u;
    }
  };
  std::vector<int> uniform(static_cast<std::size_t>(graph.num_tasks), -1);
  recompute_uniform(uniform);

  auto move_subtree = [&](index_t root, int dst) {
    // Iterative DFS; every task in the subtree is on node_of[root].
    std::vector<index_t> stack{root};
    while (!stack.empty()) {
      const index_t t = stack.back();
      stack.pop_back();
      node_of[static_cast<std::size_t>(t)] = dst;
      for (index_t c : graph.children[static_cast<std::size_t>(t)]) {
        stack.push_back(c);
      }
    }
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool moved = false;
    // Root-to-leaf sweep (reverse postorder): parents settle before their
    // children consider chasing them.
    for (index_t t = graph.num_tasks - 1; t >= 0; --t) {
      const index_t p = graph.parent[static_cast<std::size_t>(t)];
      if (p == -1) continue;
      const int src = node_of[static_cast<std::size_t>(t)];
      if (uniform[static_cast<std::size_t>(t)] != src) continue;
      const int parent_node = node_of[static_cast<std::size_t>(p)];
      if (parent_node == src) continue;

      const double edge =
          options.link.transfer_time(graph.ms[static_cast<std::size_t>(t)]);
      const double w = subtree_seconds[static_cast<std::size_t>(t)];
      const double before = max_load(load) + comm;

      // Candidate destinations: the parent's node (kills the message) and
      // the least-loaded node (fixes imbalance); lowest id breaks ties.
      int least = 0;
      for (int n = 1; n < options.num_nodes; ++n) {
        if (load[static_cast<std::size_t>(n)] <
            load[static_cast<std::size_t>(least)]) {
          least = n;
        }
      }
      int best_dst = -1;
      double best_after = before;
      for (int dst : {parent_node, least}) {
        if (dst == src) continue;
        load[static_cast<std::size_t>(src)] -= w;
        load[static_cast<std::size_t>(dst)] += w;
        const double comm_after = (dst == parent_node) ? comm - edge : comm;
        const double after = max_load(load) + comm_after;
        load[static_cast<std::size_t>(src)] += w;
        load[static_cast<std::size_t>(dst)] -= w;
        if (after < best_after - 1e-15) {
          best_after = after;
          best_dst = dst;
        }
      }
      if (best_dst < 0) continue;

      load[static_cast<std::size_t>(src)] -= w;
      load[static_cast<std::size_t>(best_dst)] += w;
      if (best_dst == parent_node) comm -= edge;
      move_subtree(t, best_dst);
      ++result.moves;
      moved = true;
    }
    if (!moved) break;
    recompute_uniform(uniform);
  }

  result.refined_cost = max_load(load) + comm;
  return result;
}

}  // namespace mfgpu
