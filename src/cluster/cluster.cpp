#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "gpusim/cost_class.hpp"
#include "gpusim/fault_injector.hpp"
#include "multifrontal/frontal.hpp"
#include "multifrontal/stack_arena.hpp"
#include "obs/obs.hpp"
#include "obs/schedule_record.hpp"
#include "sched/task_graph.hpp"

namespace mfgpu {

const char* cluster_engine_name(ClusterEngine engine) noexcept {
  switch (engine) {
    case ClusterEngine::FanBoth: return "fan-both";
    case ClusterEngine::LevelSync: return "level-sync";
  }
  return "?";
}

ClusterOptions parse_cluster(const std::string& spec) {
  ClusterOptions options;
  if (spec == "off" || spec.empty()) {
    options.num_nodes = 0;
    return options;
  }
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::size_t end = (comma == std::string::npos) ? spec.size() : comma;
    tokens.push_back(spec.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  char* parse_end = nullptr;
  const double nodes = std::strtod(tokens.front().c_str(), &parse_end);
  if (parse_end == tokens.front().c_str() || *parse_end != '\0' ||
      nodes < 1.0 || nodes != static_cast<double>(static_cast<int>(nodes))) {
    throw InvalidArgumentError("parse_cluster: bad node count in '" + spec +
                               "'");
  }
  options.num_nodes = static_cast<int>(nodes);
  std::string link_spec;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "fanboth") {
      options.engine = ClusterEngine::FanBoth;
    } else if (token == "levelsync") {
      options.engine = ClusterEngine::LevelSync;
    } else if (token == "norefine") {
      options.refine_placement = false;
    } else if (token == "nogpu") {
      options.nodes_have_gpu = false;
    } else {
      if (!link_spec.empty()) link_spec += ',';
      link_spec += token;
    }
  }
  if (!link_spec.empty()) options.link = parse_link(link_spec);
  return options;
}

std::string cluster_description(const ClusterOptions& options) {
  if (!options.enabled()) return "off";
  return std::to_string(options.num_nodes) + " nodes, " +
         cluster_engine_name(options.engine) + ", " +
         link_description(options.link);
}

namespace {

/// All execution state owned by one simulated node, plus its two
/// interconnect lanes: send_free (egress — when the wire out of this node
/// is next idle) and recv_free (ingress — when this node can next absorb a
/// message). The lanes are virtual times, not clocks: they let transfers
/// overlap compute on both endpoints while messages still serialize.
struct NodeState {
  FactorContext ctx;
  std::unique_ptr<Device> device;
  std::unique_ptr<FuExecutor> executor;
  std::unique_ptr<StackArena> front_arena;
  double assembly_time = 0.0;
  double send_free = 0.0;
  double recv_free = 0.0;
  bool dead = false;
  index_t executed = 0;
  index_t death_after = -1;  ///< dies after this many executed tasks; -1 = never
};

/// Salt mixed into the death draws so they never collide with the device
/// fault injector's per-front scopes.
constexpr std::uint64_t kDeathScope = 0x636c757374ULL;  // "clust"

}  // namespace

FactorizeResult factorize_cluster(const Analysis& analysis,
                                  const ClusterFactorizeOptions& options,
                                  const WorkerExecutorFactory& make_executor,
                                  ClusterStats* stats_out) {
  const SymbolicFactor& sym = analysis.symbolic;
  const SparseSpd& a = analysis.permuted;
  const index_t nsup = sym.num_supernodes();
  const ClusterOptions& cluster = options.cluster;
  MFGPU_CHECK(cluster.num_nodes > 0,
              "factorize_cluster: need at least one node");
  const int num_nodes = cluster.num_nodes;
  const InterconnectModel& link = cluster.link;
  const bool wired = link.enabled();

  obs::ScopedSpan factorize_span("cluster", "factorize_cluster");
  factorize_span.set_arg(0, "supernodes", nsup);
  factorize_span.set_arg(1, "nodes", num_nodes);

  ClusterStats stats;
  stats.num_nodes = num_nodes;
  stats.engine = cluster.engine;

  FactorizeResult result;
  result.factor.numeric = true;
  if (options.numeric.store_factor) {
    if (options.numeric.precision == FactorPrecision::Float32) {
      result.factor.panels32.resize(static_cast<std::size_t>(nsup));
    } else {
      result.factor.panels.resize(static_cast<std::size_t>(nsup));
    }
  }
  if (nsup == 0) {
    if (stats_out != nullptr) *stats_out = stats;
    return result;
  }

  const TaskGraph graph = build_task_graph(sym, a);

  // Critical-path priority (same weight as factorize_parallel) and per-task
  // work for placement bookkeeping and death failover.
  std::vector<double> task_work(static_cast<std::size_t>(nsup), 0.0);
  std::vector<double> bottom(static_cast<std::size_t>(nsup), 0.0);
  for (index_t t = nsup - 1; t >= 0; --t) {
    task_work[static_cast<std::size_t>(t)] =
        fu_total_ops(graph.ms[static_cast<std::size_t>(t)],
                     graph.ks[static_cast<std::size_t>(t)]) +
        graph.assembly_entries[static_cast<std::size_t>(t)];
    const index_t p = graph.parent[static_cast<std::size_t>(t)];
    bottom[static_cast<std::size_t>(t)] =
        task_work[static_cast<std::size_t>(t)] +
        ((p != -1) ? bottom[static_cast<std::size_t>(p)] : 0.0);
  }

  PlacementOptions placement_options;
  placement_options.num_nodes = num_nodes;
  placement_options.link = link;
  placement_options.refine = cluster.refine_placement;
  PlacementResult placement = place_subtrees(graph, placement_options);
  std::vector<int> node_of = std::move(placement.node_of);
  stats.placement_seed_cost = placement.seed_cost;
  stats.placement_refined_cost = placement.refined_cost;
  stats.placement_moves = placement.moves;

  index_t max_m = 0, max_k = 0, max_order = 0;
  for (const auto& sn : sym.supernodes()) {
    max_m = std::max(max_m, sn.num_update_rows());
    max_k = std::max(max_k, sn.width());
    max_order = std::max(max_order, sn.front_order());
  }

  obs::ScheduleRecorder* rec = options.recorder;
  if (rec != nullptr) {
    rec->start(num_nodes, nsup, graph.parent, /*parallel=*/true,
               /*batched=*/false);
  }

  std::vector<NodeState> nodes(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    NodeState& node = nodes[static_cast<std::size_t>(n)];
    const WorkerSpec spec{cluster.nodes_have_gpu};
    if (spec.has_gpu) {
      Device::Options device_options = options.device;
      device_options.numeric = true;
      node.device = std::make_unique<Device>(device_options);
      node.ctx.device = node.device.get();
    }
    node.executor = make_executor
                        ? make_executor(spec, n)
                        : default_worker_executor(spec, options.executor);
    MFGPU_CHECK(node.executor != nullptr,
                "factorize_cluster: executor factory returned null");
    node.front_arena = std::make_unique<StackArena>(max_order * max_order);
    if (rec != nullptr) {
      rec->attach(n, node.ctx.host_clock, spec.has_gpu);
      rec->begin_task(n, obs::TaskKind::Prologue, -1, node.ctx.host_clock);
    }
    node.executor->prepare(max_m, max_k, node.ctx);
    if (rec != nullptr) rec->end_task(n, node.ctx.host_clock);
  }

  // Remaining assigned work per node (death failover picks the least
  // loaded survivor) and the deterministic death draws: whether node n dies
  // and after how many of its assigned tasks are pure functions of
  // (death_seed, n) — independent of execution order.
  std::vector<double> remaining(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<index_t> assigned(static_cast<std::size_t>(num_nodes), 0);
  for (index_t t = 0; t < nsup; ++t) {
    const std::size_t n = static_cast<std::size_t>(node_of[static_cast<std::size_t>(t)]);
    remaining[n] += task_work[static_cast<std::size_t>(t)];
    ++assigned[n];
  }
  if (cluster.node_death_rate > 0.0) {
    for (int n = 0; n < num_nodes; ++n) {
      if (assigned[static_cast<std::size_t>(n)] == 0) continue;
      const std::uint64_t scope =
          kDeathScope ^ static_cast<std::uint64_t>(n);
      if (FaultInjector::uniform(cluster.death_seed, scope, 0) >=
          cluster.node_death_rate) {
        continue;
      }
      const double u = FaultInjector::uniform(cluster.death_seed, scope, 1);
      const index_t span = assigned[static_cast<std::size_t>(n)];
      nodes[static_cast<std::size_t>(n)].death_after = std::clamp<index_t>(
          1 + static_cast<index_t>(u * static_cast<double>(span - 1)), 1,
          span);
    }
  }
  int alive = num_nodes;

  // Cross-task hand-off: packed updates, their virtual ready times, and the
  // node that produced each (for message routing — a dead node's published
  // updates stay readable, i.e. checkpointed).
  std::vector<std::vector<double>> updates(static_cast<std::size_t>(nsup));
  std::vector<double> update_ready(static_cast<std::size_t>(nsup), 0.0);
  std::vector<int> producer_node(static_cast<std::size_t>(nsup), -1);
  std::vector<FuCallRecord> records(static_cast<std::size_t>(nsup));
  std::vector<char> done(static_cast<std::size_t>(nsup), 0);

  // A child's update is local when the link is shared memory, the producer
  // is the consumer, or the update is empty; otherwise it is a message.
  auto is_local = [&](index_t c, int dst) {
    return !wired || producer_node[static_cast<std::size_t>(c)] == dst ||
           graph.ms[static_cast<std::size_t>(c)] <= 0;
  };

  // When child c's update can be consumed on node dst. The message leaves
  // the producer when both the update and the producer's egress lane are
  // free, occupies the wire for wire_seconds, then lands once the
  // consumer's ingress lane absorbed it (latency charged once per message).
  // `commit` mutates the lanes and traffic stats; the non-mutating variant
  // estimates start times during task selection.
  auto wire_time = [&](index_t c, int dst, bool commit) {
    if (is_local(c, dst)) return update_ready[static_cast<std::size_t>(c)];
    NodeState& src = nodes[static_cast<std::size_t>(
        producer_node[static_cast<std::size_t>(c)])];
    NodeState& sink = nodes[static_cast<std::size_t>(dst)];
    const index_t m = graph.ms[static_cast<std::size_t>(c)];
    const double start =
        std::max(update_ready[static_cast<std::size_t>(c)], src.send_free);
    const double wire = link.wire_seconds(m);
    const double landed = std::max(start + wire + link.latency, sink.recv_free);
    if (commit) {
      src.send_free = start + wire;
      sink.recv_free = landed;
      ++stats.messages;
      stats.bytes_on_wire += InterconnectModel::update_bytes(m);
      stats.send_busy_seconds += wire;
    }
    return landed;
  };

  // Assemble, execute, and publish one front on its node — the same numeric
  // path as factorize_parallel's task body, so the factor is bitwise
  // identical to the serial driver for any placement.
  auto run_task = [&](index_t s, int n) {
    NodeState& node = nodes[static_cast<std::size_t>(n)];
    FactorContext& ctx = node.ctx;
    const SupernodeInfo& sn = sym.supernodes()[static_cast<std::size_t>(s)];
    obs::ScopedSpan task_span("cluster", "fu_task", &ctx.host_clock);
    task_span.set_arg(0, "snode", s);
    task_span.set_arg(1, "node", n);
    if (rec != nullptr) {
      rec->begin_task(n, obs::TaskKind::Front, s, ctx.host_clock);
    }

    const auto storage =
        node.front_arena->push(sn.front_order() * sn.front_order());
    struct ArenaPop {
      StackArena* arena;
      ~ArenaPop() { arena->pop(); }
    } arena_guard{node.front_arena.get()};
    FrontalMatrix front(sn, storage);

    // Virtual start: local children are dependency joins (recomputable in
    // what-if replay); remote children are message arrivals, recorded as
    // Transfer-class waits so the critical-path analyzer attributes wire
    // stalls and rate reruns scale them with the link.
    const auto& kids = graph.children[static_cast<std::size_t>(s)];
    for (index_t c : kids) {
      if (is_local(c, n)) {
        if (rec != nullptr) rec->note_join(n, c);
        ctx.host_clock.advance_to(update_ready[static_cast<std::size_t>(c)]);
      } else {
        const double landed = wire_time(c, n, /*commit=*/true);
        CostClassScope transfer(CostClass::Transfer);
        ctx.host_clock.advance_to(landed);
      }
    }

    double assembly_entries =
        static_cast<double>(front.assemble_from_matrix(a, sn));
    // Descending child index: the serial driver's extend-add order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      const SupernodeInfo& child =
          sym.supernodes()[static_cast<std::size_t>(*it)];
      assembly_entries += static_cast<double>(front.extend_add(
          child.update_rows, updates[static_cast<std::size_t>(*it)]));
      updates[static_cast<std::size_t>(*it)] = {};  // freed once consumed
    }
    HostExec host = ctx.host_exec();
    {
      const double t0 = ctx.host_clock.now();
      host_assembly_cost(host, assembly_entries);
      node.assembly_time += ctx.host_clock.now() - t0;
    }

    FrontBlocks blocks = make_shape_blocks(front.m(), front.k(), sn.first_col);
    blocks.snode = s;
    blocks.l1 = front.l1();
    blocks.l2 = front.l2();
    blocks.u = front.update();
    if (rec != nullptr) rec->add_call(n, blocks.call());
    FuOutcome outcome;
    {
      obs::ScopedSpan fu_span("cluster", "factor_update", &ctx.host_clock);
      if (rec != nullptr) rec->begin_exec(n);
      outcome = node.executor->execute(blocks, ctx);
      if (rec != nullptr) rec->end_exec(n);
      fu_span.set_arg(0, "m", front.m());
      fu_span.set_arg(1, "k", front.k());
      fu_span.set_arg(2, "policy", outcome.record.policy);
    }

    outcome.record.snode = s;
    records[static_cast<std::size_t>(s)] = outcome.record;
    if (options.numeric.store_factor) {
      const MatrixView<const double> source(front.full().data(), front.order(),
                                            front.k(), front.full().ld());
      if (options.numeric.precision == FactorPrecision::Float32) {
        auto& panel = result.factor.panels32[static_cast<std::size_t>(s)];
        panel = Matrix<float>(front.order(), front.k());
        copy_into<float>(source, panel.view());
      } else {
        auto& panel = result.factor.panels[static_cast<std::size_t>(s)];
        panel = Matrix<double>(front.order(), front.k());
        copy_into<double>(source, panel.view());
      }
    }
    {
      const double t0 = ctx.host_clock.now();
      host_assembly_cost(host, static_cast<double>(front.order()) *
                                   static_cast<double>(front.k()));
      node.assembly_time += ctx.host_clock.now() - t0;
    }

    if (sn.parent != -1) {
      auto& update = updates[static_cast<std::size_t>(s)];
      update.resize(static_cast<std::size_t>(packed_lower_size(front.m())));
      front.pack_update(update);
      const double t0 = ctx.host_clock.now();
      host_assembly_cost(host,
                         static_cast<double>(packed_lower_size(front.m())));
      node.assembly_time += ctx.host_clock.now() - t0;
      if (rec != nullptr) {
        rec->note_ready(n, s, outcome.update_ready_at,
                        static_cast<int>(outcome.record.policy));
      }
      update_ready[static_cast<std::size_t>(s)] =
          std::max(outcome.update_ready_at, ctx.host_clock.now());
      producer_node[static_cast<std::size_t>(s)] = n;
    } else {
      MFGPU_CHECK(front.m() == 0,
                  "factorize_cluster: root supernode with update rows");
      if (rec != nullptr) {
        rec->note_ready(n, s, outcome.update_ready_at,
                        static_cast<int>(outcome.record.policy));
      }
      ctx.host_clock.advance_to(outcome.update_ready_at);
    }
    if (rec != nullptr) rec->end_task(n, ctx.host_clock);
  };

  // Node death: re-place every unexecuted task of the dead node onto the
  // least-loaded survivor, which stalls for a failure-detection window
  // before picking the work up. Published updates survive (checkpointed),
  // so the numerics are untouched — only the schedule shifts.
  auto kill_node = [&](int n) {
    NodeState& node = nodes[static_cast<std::size_t>(n)];
    node.dead = true;
    ++stats.node_deaths;
    --alive;
    const double death_time = node.ctx.host_clock.now();
    int target = -1;
    for (int x = 0; x < num_nodes; ++x) {
      if (nodes[static_cast<std::size_t>(x)].dead) continue;
      if (target < 0 || remaining[static_cast<std::size_t>(x)] <
                            remaining[static_cast<std::size_t>(target)]) {
        target = x;
      }
    }
    MFGPU_CHECK(target >= 0, "factorize_cluster: no surviving node");
    for (index_t t = 0; t < nsup; ++t) {
      if (done[static_cast<std::size_t>(t)] != 0 ||
          node_of[static_cast<std::size_t>(t)] != n) {
        continue;
      }
      node_of[static_cast<std::size_t>(t)] = target;
      remaining[static_cast<std::size_t>(target)] +=
          task_work[static_cast<std::size_t>(t)];
      ++stats.replaced_tasks;
    }
    remaining[static_cast<std::size_t>(n)] = 0.0;
    {
      CostClassScope transfer(CostClass::Transfer);
      nodes[static_cast<std::size_t>(target)].ctx.host_clock.advance_to(
          death_time + 10.0 * link.latency);
    }
  };

  auto finish_task = [&](index_t s) {
    const int n = node_of[static_cast<std::size_t>(s)];
    NodeState& node = nodes[static_cast<std::size_t>(n)];
    done[static_cast<std::size_t>(s)] = 1;
    remaining[static_cast<std::size_t>(n)] -=
        task_work[static_cast<std::size_t>(s)];
    ++node.executed;
    if (node.death_after >= 0 && !node.dead &&
        node.executed >= node.death_after && alive > 1) {
      kill_node(n);
    }
  };

  // Earliest virtual start of a ready task on its node, for selection.
  auto estimated_start = [&](index_t s) {
    const int n = node_of[static_cast<std::size_t>(s)];
    double est = nodes[static_cast<std::size_t>(n)].ctx.host_clock.now();
    for (index_t c : graph.children[static_cast<std::size_t>(s)]) {
      est = std::max(est, wire_time(c, n, /*commit=*/false));
    }
    return est;
  };

  // Pick the ready task with the earliest estimated start; critical-path
  // bottom level, then supernode index, break ties. Deterministic: the
  // scan order and every key are placement-state functions, never memory
  // addresses or wall clock.
  auto pick_next = [&](std::vector<index_t>& ready) {
    std::size_t best = 0;
    double best_est = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const index_t t = ready[i];
      const double est = estimated_start(t);
      const index_t b = ready[best];
      const bool better =
          est < best_est ||
          (est == best_est &&
           (bottom[static_cast<std::size_t>(t)] >
                bottom[static_cast<std::size_t>(b)] ||
            (bottom[static_cast<std::size_t>(t)] ==
                 bottom[static_cast<std::size_t>(b)] &&
             t < b)));
      if (i == 0 || better) {
        best = i;
        best_est = est;
      }
    }
    const index_t t = ready[best];
    ready[best] = ready.back();
    ready.pop_back();
    return t;
  };

  std::vector<index_t> pending(static_cast<std::size_t>(nsup), 0);
  for (index_t t = 0; t < nsup; ++t) {
    pending[static_cast<std::size_t>(t)] = static_cast<index_t>(
        graph.children[static_cast<std::size_t>(t)].size());
  }

  if (cluster.engine == ClusterEngine::FanBoth) {
    // Asynchronous fan-both: no barriers of any kind. Any task whose
    // children have published may run; messages fan OUT of producers and
    // IN to consumers concurrently on the per-node lanes.
    std::vector<index_t> ready;
    for (index_t t = 0; t < nsup; ++t) {
      if (pending[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
    }
    index_t executed_total = 0;
    while (!ready.empty()) {
      const index_t s = pick_next(ready);
      run_task(s, node_of[static_cast<std::size_t>(s)]);
      finish_task(s);
      ++executed_total;
      const index_t p = graph.parent[static_cast<std::size_t>(s)];
      if (p != -1 && --pending[static_cast<std::size_t>(p)] == 0) {
        ready.push_back(p);
      }
    }
    MFGPU_CHECK(executed_total == nsup,
                "factorize_cluster: not all supernodes executed");
  } else {
    // Level-synchronous reference: the elimination tree is swept height by
    // height with a global barrier after every level — the classic
    // fan-in/fan-out discipline the asynchronous engine is measured
    // against.
    std::vector<index_t> height(static_cast<std::size_t>(nsup), 0);
    index_t num_levels = 1;
    for (index_t t = 0; t < nsup; ++t) {
      const index_t p = graph.parent[static_cast<std::size_t>(t)];
      if (p != -1) {
        height[static_cast<std::size_t>(p)] =
            std::max(height[static_cast<std::size_t>(p)],
                     height[static_cast<std::size_t>(t)] + 1);
      }
      num_levels = std::max(num_levels, height[static_cast<std::size_t>(t)] + 1);
    }
    std::vector<std::vector<index_t>> levels(
        static_cast<std::size_t>(num_levels));
    for (index_t t = 0; t < nsup; ++t) {
      levels[static_cast<std::size_t>(height[static_cast<std::size_t>(t)])]
          .push_back(t);
    }
    for (auto& level : levels) {
      std::vector<index_t> ready = level;
      while (!ready.empty()) {
        const index_t s = pick_next(ready);
        run_task(s, node_of[static_cast<std::size_t>(s)]);
        finish_task(s);
      }
      // Barrier: every surviving node (and its lanes) waits for the level.
      double level_end = 0.0;
      for (const NodeState& node : nodes) {
        if (!node.dead) {
          level_end = std::max(level_end, node.ctx.host_clock.now());
        }
      }
      for (NodeState& node : nodes) {
        if (node.dead) continue;
        node.ctx.host_clock.advance_to(level_end);
        node.send_free = std::max(node.send_free, level_end);
        node.recv_free = std::max(node.recv_free, level_end);
      }
    }
  }

  // Drain in-flight device copies and reduce the node clocks into the
  // cluster's virtual makespan.
  double makespan = 0.0;
  double assembly_total = 0.0;
  for (int n = 0; n < num_nodes; ++n) {
    NodeState& node = nodes[static_cast<std::size_t>(n)];
    if (rec != nullptr) {
      rec->begin_task(n, obs::TaskKind::Epilogue, -1, node.ctx.host_clock);
    }
    if (node.ctx.device != nullptr) {
      node.ctx.device->synchronize(node.ctx.host_clock);
    }
    if (rec != nullptr) {
      rec->end_task(n, node.ctx.host_clock);
      rec->detach(n, node.ctx.host_clock);
    }
    makespan = std::max(makespan, node.ctx.host_clock.now());
    assembly_total += node.assembly_time;
    result.faults_survived += node.executor->fault_count();
    if (node.executor->quarantined()) ++result.quarantined_workers;
  }
  stats.makespan = makespan;
  stats.max_node_seconds = makespan;

  FactorizationTrace& trace = result.trace;
  for (index_t s = 0; s < nsup; ++s) {
    trace.record_call(records[static_cast<std::size_t>(s)]);
  }
  trace.assembly_time = assembly_total;
  trace.total_time = makespan;

  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const NodeState& node = nodes[n];
    WorkerMemory mem;
    mem.worker = static_cast<int>(n);
    if (node.front_arena != nullptr) {
      mem.arena_peak_bytes =
          static_cast<std::int64_t>(node.front_arena->peak_entries()) *
          static_cast<std::int64_t>(sizeof(double));
    }
    if (node.ctx.device != nullptr) {
      const PoolStats& dev = node.ctx.device->device_pool_stats();
      const PoolStats& pinned = node.ctx.device->pinned_pool_stats();
      mem.device_pool_peak_bytes = dev.peak_bytes;
      mem.pinned_pool_peak_bytes = pinned.peak_bytes;
      mem.device_pool_charged_allocs = dev.charged_allocations;
      mem.pinned_pool_charged_allocs = pinned.charged_allocations;
    }
    result.memory.push_back(mem);
  }

  if (obs::enabled()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.add("multifrontal.assembly.seconds", assembly_total);
    metrics.add("multifrontal.factorize.seconds", makespan);
    metrics.add("multifrontal.supernodes", static_cast<double>(nsup));
    metrics.gauge_set("cluster.nodes", static_cast<double>(num_nodes));
    metrics.add("cluster.makespan_seconds", makespan);
    metrics.add("cluster.messages", static_cast<double>(stats.messages));
    metrics.add("cluster.bytes_on_wire", stats.bytes_on_wire);
    metrics.add("cluster.send_busy_seconds", stats.send_busy_seconds);
    metrics.gauge_set("cluster.placement.moves",
                      static_cast<double>(stats.placement_moves));
    metrics.gauge_set("cluster.placement.cost", stats.placement_refined_cost);
    if (stats.node_deaths > 0) {
      metrics.add("cluster.node_deaths",
                  static_cast<double>(stats.node_deaths));
      metrics.add("cluster.replaced_tasks",
                  static_cast<double>(stats.replaced_tasks));
    }
    if (result.faults_survived > 0) {
      metrics.add("fault.run.survived",
                  static_cast<double>(result.faults_survived));
    }
    for (const NodeState& node : nodes) {
      if (node.ctx.device != nullptr) {
        metrics.gauge_max("gpusim.pool.device.peak_bytes",
                          static_cast<double>(
                              node.ctx.device->device_pool_stats().peak_bytes));
        metrics.gauge_max("gpusim.pool.pinned.peak_bytes",
                          static_cast<double>(
                              node.ctx.device->pinned_pool_stats().peak_bytes));
      }
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace mfgpu
