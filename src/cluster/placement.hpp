// Subtree-to-node placement for the simulated cluster. The proportional
// mapping (sched/proportional_map.hpp) is the seed — the classic
// subtree-to-subcube assignment that keeps whole subtrees node-local — and
// a deterministic greedy refinement then trades residual load imbalance
// against interconnect cost: moving a uniformly-placed subtree next to its
// parent kills the cross-node message its root would otherwise send.
#pragma once

#include <vector>

#include "sched/interconnect.hpp"
#include "sched/task_graph.hpp"

namespace mfgpu {

struct PlacementOptions {
  int num_nodes = 1;
  InterconnectModel link;
  /// Run the greedy refinement after the proportional seed.
  bool refine = true;
  /// Refinement sweeps over the tree (each sweep visits every movable
  /// subtree once, root to leaves); stops early when a sweep moves nothing.
  int max_passes = 4;
  /// Converts task work units (F-U flops + assembly entries) to seconds so
  /// compute and wire cost share one objective. The refinement only needs
  /// the ratio to be plausible, not calibrated.
  double ops_per_second = 2.0e9;
};

struct PlacementResult {
  /// node_of[task] in [0, num_nodes).
  std::vector<int> node_of;
  double seed_cost = 0.0;     ///< objective of the proportional seed
  double refined_cost = 0.0;  ///< objective after refinement (== seed_cost
                              ///< when refinement is off or found nothing)
  int moves = 0;              ///< subtree moves the refinement accepted
};

/// Objective: max per-node compute seconds + total cross-node transfer
/// seconds. Lower is better; the two terms share the seconds unit via
/// PlacementOptions::ops_per_second.
double placement_cost(const TaskGraph& graph, const std::vector<int>& node_of,
                      const PlacementOptions& options);

/// Proportional seed + greedy subtree refinement. Every task is assigned
/// exactly one node; with one node (or a disabled link and refine off) the
/// result is the plain proportional mapping.
PlacementResult place_subtrees(const TaskGraph& graph,
                               const PlacementOptions& options);

}  // namespace mfgpu
