#include "policy/p4_gpu_potrf.hpp"

#include <algorithm>

namespace mfgpu {

index_t p4_auto_panel_width(index_t k, index_t m) {
  (void)m;  // reserved: a width tuned per front shape (see header note)
  return std::clamp<index_t>(k / 32, 64, 512);
}

P4KernelTimes p4_factor_on_gpu(const GpuExec& exec, DeviceMatrix& panel,
                               DeviceMatrix* u_product, index_t m, index_t k,
                               index_t panel_width, index_t global_col) {
  MFGPU_CHECK(panel.rows() == k + m && panel.cols() == k,
              "p4_factor_on_gpu: panel shape mismatch");
  MFGPU_CHECK(m == 0 || (u_product != nullptr && u_product->rows() == m &&
                         u_product->cols() == m),
              "p4_factor_on_gpu: u_product shape mismatch");
  MFGPU_CHECK(panel_width > 0, "p4_factor_on_gpu: panel width positive");

  P4KernelTimes times;
  for (index_t p = 0; p < k; p += panel_width) {
    const index_t w = std::min(panel_width, k - p);
    // 1. Pivot block.
    times.potrf +=
        gpu_potrf(exec, dev_block(panel, p, p, w, w), global_col + p);

    const index_t below = (k + m) - (p + w);  // rows spanning L1 rest + L2
    if (below > 0) {
      // 2. One trsm across the rest of L1 and all of L2.
      times.trsm += gpu_trsm(exec, dev_block(panel, p, p, w, w),
                             dev_block(panel, p + w, p, below, w));
    }
    const index_t l1_rest = k - (p + w);
    if (l1_rest > 0) {
      // 3. Trailing update of L1's lower triangle.
      times.syrk += gpu_syrk(exec, -1.0f,
                             dev_block(panel, p + w, p, l1_rest, w),
                             dev_block(panel, p + w, p + w, l1_rest, l1_rest));
      if (m > 0) {
        // 4. Update the remaining columns of L2.
        times.gemm += gpu_gemm_nt(exec, -1.0f,
                                  dev_block(panel, k, p, m, w),
                                  dev_block(panel, p + w, p, l1_rest, w),
                                  dev_block(panel, k, p + w, m, l1_rest));
      }
    }
    if (m > 0) {
      // 5. Partial update of U from this panel of L2.
      times.syrk += gpu_syrk(exec, 1.0f, dev_block(panel, k, p, m, w),
                             dev_whole(*u_product));
    }
  }
  return times;
}

}  // namespace mfgpu
