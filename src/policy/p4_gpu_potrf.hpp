// The paper's Fig. 9 algorithm: blocked Cholesky of the whole (k+m) x k
// frontal panel entirely on the GPU, with the update matrix U accumulated
// on the device. Works in panels of width w:
//   1. potrf on the w x w pivot block (light-weight kernel)
//   2. trsm on the (k+m-p-w) x w block spanning the rest of L1 and L2
//   3. syrk updating the trailing lower triangle of L1
//   4. gemm updating the remaining columns of L2
//   5. syrk accumulating the partial update of U
#pragma once

#include "gpusim/gpublas.hpp"

namespace mfgpu {

struct P4KernelTimes {
  double potrf = 0.0;
  double trsm = 0.0;
  double syrk = 0.0;  ///< includes both L1-trailing and U syrk calls
  double gemm = 0.0;

  double total() const { return potrf + trsm + syrk + gemm; }
};

/// Auto panel width: k/32 clamped to [64, 512]. This is a CALIBRATION
/// choice, not a model optimum: the narrow panels throttle P4's trailing
/// kernels at moderate front sizes, standing in for the costs that kept
/// the paper's all-GPU policy behind P3 until ~9e10 ops (Fig. 10). Under
/// the simulator's cost model alone, wider panels would always win — see
/// bench_ablation_panel_width for the sweep and the discussion in
/// EXPERIMENTS.md.
index_t p4_auto_panel_width(index_t k, index_t m = 0);

/// Factor `panel` ((k+m) x k, L1 in the top k rows) in place on the device
/// and accumulate U -= L2 L2^T into `u_product` (m x m; may be null when
/// m == 0). Returns per-kernel accumulated model durations.
P4KernelTimes p4_factor_on_gpu(const GpuExec& exec, DeviceMatrix& panel,
                               DeviceMatrix* u_product, index_t m, index_t k,
                               index_t panel_width, index_t global_col);

}  // namespace mfgpu
