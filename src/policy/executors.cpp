#include "policy/executors.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/decision_log.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "policy/p4_gpu_potrf.hpp"

namespace mfgpu {
namespace {

std::int64_t float_bytes(index_t rows, index_t cols) {
  return static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols) *
         static_cast<std::int64_t>(sizeof(float));
}

/// Finite check over the block's valid entries; lower_only limits the scan
/// to the lower triangle (L1 and U carry garbage above the diagonal).
bool block_finite(MatrixView<const double> v, bool lower_only) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = lower_only ? j : 0; i < v.rows(); ++i) {
      if (!std::isfinite(v(i, j))) return false;
    }
  }
  return true;
}

MatrixView<const double> const_view(const MatrixView<double>& v) {
  return MatrixView<const double>(v.data(), v.rows(), v.cols(), v.ld());
}

/// Validate the panels a GPU policy returned: corruption shows up as
/// non-finite entries (transfer poisoning, NaN propagation through kernels).
bool front_finite(const FrontBlocks& f) {
  if (!block_finite(const_view(f.l1), /*lower_only=*/true)) return false;
  if (f.m > 0) {
    if (!block_finite(const_view(f.l2), /*lower_only=*/false)) return false;
    if (!block_finite(const_view(f.u), /*lower_only=*/true)) return false;
  }
  return true;
}

void append_block(const MatrixView<const double>& v, std::vector<double>& buf) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = 0; i < v.rows(); ++i) buf.push_back(v(i, j));
  }
}

std::size_t restore_block(const MatrixView<double>& v,
                          const std::vector<double>& buf, std::size_t at) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = 0; i < v.rows(); ++i) v(i, j) = buf[at++];
  }
  return at;
}

}  // namespace

PolicyExecutor::PolicyExecutor(Policy policy, ExecutorOptions options)
    : policy_(policy), options_(options), name_(policy_name(policy)) {}

void PolicyExecutor::prepare(index_t max_m, index_t max_k,
                             FactorContext& ctx) {
  // Record the symbolic maximum; the pools are sized lazily at this
  // policy's first actual use, so a dispatcher that never routes a call
  // here pays nothing.
  (void)ctx;
  prepared_m_ = max_m;
  prepared_k_ = max_k;
  prepared_applied_ = false;
}

void PolicyExecutor::ensure_prepared(FactorContext& ctx) {
  if (prepared_applied_ || prepared_m_ < 0 || ctx.device == nullptr ||
      policy_ == Policy::P1) {
    return;
  }
  prepared_applied_ = true;
  Device& dev = *ctx.device;
  // Pool warm-up happens on a worker's first use of this policy — a
  // history-dependent moment. Suppress injection so it neither faults nor
  // shifts the per-front fault schedule (see fault_injector.hpp).
  FaultSuppressionGuard no_faults(&dev.fault_injector());
  SimClock& clock = ctx.host_clock;
  const index_t m = prepared_m_, k = prepared_k_;
  switch (policy_) {
    case Policy::P1:
      break;
    case Policy::P2:
      dev.allocate(m, k, "p2.l2", clock);
      dev.allocate(m, m, "p2.prod", clock);
      dev.acquire_pinned("p2.l2", float_bytes(m, k), clock);
      dev.acquire_pinned("p2.prod", float_bytes(m, m), clock);
      break;
    case Policy::P3:
      dev.allocate(k, k, "p3.l1", clock);
      dev.allocate(m, k, "p3.l2", clock);
      dev.allocate(m, m, "p3.prod", clock);
      dev.acquire_pinned("p3.l1", float_bytes(k, k), clock);
      dev.acquire_pinned("p3.l2", float_bytes(m, k), clock);
      dev.acquire_pinned("p3.prod", float_bytes(m, m), clock);
      break;
    case Policy::P4:
      dev.allocate(k + m, k, "p4.panel", clock);
      dev.allocate(m, m, "p4.prod", clock);
      dev.acquire_pinned("p4.panel", float_bytes(k + m, k), clock);
      dev.acquire_pinned("p4.prod", float_bytes(m, m), clock);
      break;
  }
}

MatrixView<double> PolicyExecutor::product_view(index_t m, bool numeric) {
  if (!numeric) {
    return MatrixView<double>(nullptr, m, m, std::max<index_t>(m, 1));
  }
  if (product_scratch_.rows() < m) {
    product_scratch_ = Matrix<double>(m, m);
  }
  return product_scratch_.view().block(0, 0, m, m);
}

FuOutcome PolicyExecutor::execute(FrontBlocks front, FactorContext& ctx) {
  MFGPU_CHECK(front.k > 0, "PolicyExecutor: empty pivot block");
  MFGPU_CHECK(policy_ == Policy::P1 || ctx.device != nullptr,
              "PolicyExecutor: GPU policy requires a device");
  MFGPU_CHECK(ctx.device == nullptr || ctx.device->numeric() == ctx.numeric,
              "PolicyExecutor: context and device must agree on numeric vs "
              "dry-run mode");
  ensure_prepared(ctx);
  switch (policy_) {
    case Policy::P1: return run_p1(front, ctx);
    case Policy::P2: return run_p2(front, ctx);
    case Policy::P3: return run_p3(front, ctx);
    case Policy::P4: return run_p4(front, ctx);
  }
  throw InvalidArgumentError("PolicyExecutor: invalid policy");
}

FuOutcome PolicyExecutor::run_p1(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 1;
  const double t0 = ctx.host_clock.now();

  out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
  if (f.m > 0) {
    out.record.t_trsm = host_trsm(host, f.l1, f.l2);
    out.record.t_syrk = host_syrk(host, -1.0, f.l2, f.u);
  }
  out.record.t_total = ctx.host_clock.now() - t0;
  out.update_ready_at = ctx.host_clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p2(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 2;
  const double t0 = clock.now();

  out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
  if (f.m > 0) {
    out.record.t_trsm = host_trsm(host, f.l1, f.l2);

    DeviceMatrix l2_d = dev.allocate(f.m, f.k, "p2.l2", clock);
    DeviceMatrix prod_d = dev.allocate(f.m, f.m, "p2.prod", clock);
    MatrixView<double> prod = product_view(f.m, ctx.numeric);
    if (options_.overlapped_copies) {
      out.record.t_copy +=
          dev.acquire_pinned("p2.l2", float_bytes(f.m, f.k), clock);
      out.record.t_copy +=
          dev.acquire_pinned("p2.prod", float_bytes(f.m, f.m), clock);
      out.record.t_copy +=
          dev.copy_to_device_async(f.l2, l2_d, 0, 0, dev.h2d_stream(), clock);
      out.record.t_syrk = gpu_syrk(ctx.gpu_exec(dev.compute_stream()), 1.0f,
                                   dev_whole(l2_d), dev_whole(prod_d));
      out.record.t_copy += dev.copy_from_device_async(
          prod_d, 0, 0, prod, dev.d2h_stream(), clock);
      dev.synchronize_stream(dev.d2h_stream(), clock);
    } else {
      out.record.t_copy += dev.copy_to_device_sync(f.l2, l2_d, 0, 0, clock);
      out.record.t_syrk = gpu_syrk(ctx.gpu_exec(dev.compute_stream()), 1.0f,
                                   dev_whole(l2_d), dev_whole(prod_d));
      out.record.t_copy += dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
    }
    out.record.t_syrk += host_apply_update(
        host,
        MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                 prod.ld()),
        f.u);
  }
  out.record.t_total = clock.now() - t0;
  out.update_ready_at = clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p3(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 3;
  const double t0 = clock.now();

  if (f.m == 0) {
    // Nothing to offload: P3 degenerates to the host potrf.
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_total = clock.now() - t0;
    out.update_ready_at = clock.now();
    return out;
  }

  DeviceMatrix l1_d = dev.allocate(f.k, f.k, "p3.l1", clock);
  DeviceMatrix l2_d = dev.allocate(f.m, f.k, "p3.l2", clock);
  DeviceMatrix prod_d = dev.allocate(f.m, f.m, "p3.prod", clock);
  MatrixView<double> prod = product_view(f.m, ctx.numeric);
  GpuExec compute = ctx.gpu_exec(dev.compute_stream());

  if (options_.overlapped_copies) {
    out.record.t_copy +=
        dev.acquire_pinned("p3.l1", float_bytes(f.k, f.k), clock);
    out.record.t_copy +=
        dev.acquire_pinned("p3.l2", float_bytes(f.m, f.k), clock);
    out.record.t_copy +=
        dev.acquire_pinned("p3.prod", float_bytes(f.m, f.m), clock);
    // Ship the unsolved L2 while the host factors the pivot block (§V-A2).
    out.record.t_copy +=
        dev.copy_to_device_async(f.l2, l2_d, 0, 0, dev.h2d_stream(), clock);
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_copy +=
        dev.copy_to_device_async(f.l1, l1_d, 0, 0, dev.h2d_stream(), clock);
    out.record.t_trsm = gpu_trsm(compute, dev_whole(l1_d), dev_whole(l2_d));
    // Solved L2 streams back while the syrk runs.
    out.record.t_copy += dev.copy_from_device_async(l2_d, 0, 0, f.l2,
                                                    dev.d2h_stream(), clock);
    out.record.t_syrk =
        gpu_syrk(compute, 1.0f, dev_whole(l2_d), dev_whole(prod_d));
    out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                    dev.d2h_stream(), clock);
    dev.synchronize_stream(dev.d2h_stream(), clock);
  } else {
    // Basic implementation (paper Section IV): pageable synchronous copies.
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_copy += dev.copy_to_device_sync(f.l1, l1_d, 0, 0, clock);
    out.record.t_copy += dev.copy_to_device_sync(f.l2, l2_d, 0, 0, clock);
    out.record.t_trsm = gpu_trsm(compute, dev_whole(l1_d), dev_whole(l2_d));
    out.record.t_copy += dev.copy_from_device_sync(l2_d, 0, 0, f.l2, clock);
    out.record.t_syrk =
        gpu_syrk(compute, 1.0f, dev_whole(l2_d), dev_whole(prod_d));
    out.record.t_copy += dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
  }
  out.record.t_syrk += host_apply_update(
      host,
      MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                               prod.ld()),
      f.u);
  out.record.t_total = clock.now() - t0;
  out.update_ready_at = clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p4(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 4;
  const double t0 = clock.now();

  DeviceMatrix panel_d = dev.allocate(f.k + f.m, f.k, "p4.panel", clock);
  DeviceMatrix prod_d =
      (f.m > 0) ? dev.allocate(f.m, f.m, "p4.prod", clock) : DeviceMatrix{};
  MatrixView<double> prod = product_view(f.m, ctx.numeric);
  GpuExec compute = ctx.gpu_exec(dev.compute_stream());
  const index_t w = (options_.p4_panel_width > 0)
                        ? options_.p4_panel_width
                        : p4_auto_panel_width(f.k, f.m);
  const bool async = options_.overlapped_copies || options_.copy_optimized_p4;

  // Upload L1 and L2 into the combined panel.
  if (async) {
    out.record.t_copy +=
        dev.acquire_pinned("p4.panel", float_bytes(f.k + f.m, f.k), clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.acquire_pinned("p4.prod", float_bytes(f.m, f.m), clock);
    }
    out.record.t_copy +=
        dev.copy_to_device_async(f.l1, panel_d, 0, 0, dev.h2d_stream(), clock);
    if (f.m > 0) {
      out.record.t_copy += dev.copy_to_device_async(f.l2, panel_d, f.k, 0,
                                                    dev.h2d_stream(), clock);
    }
  } else {
    out.record.t_copy += dev.copy_to_device_sync(f.l1, panel_d, 0, 0, clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.copy_to_device_sync(f.l2, panel_d, f.k, 0, clock);
    }
  }

  const P4KernelTimes times =
      p4_factor_on_gpu(compute, panel_d, (f.m > 0) ? &prod_d : nullptr, f.m,
                       f.k, w, f.global_col);
  out.record.t_potrf = times.potrf;
  out.record.t_trsm = times.trsm + times.gemm;
  out.record.t_syrk = times.syrk;

  if (options_.copy_optimized_p4 && f.m > 0) {
    // Wait only for the update matrix; the factored panel streams back
    // behind it while the host proceeds to the next front.
    out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                    dev.d2h_stream(), clock);
    const Event prod_done = dev.record(dev.d2h_stream());
    out.record.t_copy += dev.copy_from_device_async(panel_d, 0, 0, f.l1,
                                                    dev.d2h_stream(), clock);
    out.record.t_copy += dev.copy_from_device_async(panel_d, f.k, 0, f.l2,
                                                    dev.d2h_stream(), clock);
    clock.advance_to(prod_done.time);
    out.record.t_syrk += host_apply_update(
        host,
        MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                 prod.ld()),
        f.u);
    out.update_ready_at = clock.now();
  } else if (async) {
    out.record.t_copy += dev.copy_from_device_async(panel_d, 0, 0, f.l1,
                                                    dev.d2h_stream(), clock);
    if (f.m > 0) {
      out.record.t_copy += dev.copy_from_device_async(panel_d, f.k, 0, f.l2,
                                                      dev.d2h_stream(), clock);
      out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                      dev.d2h_stream(), clock);
    }
    dev.synchronize_stream(dev.d2h_stream(), clock);
    if (f.m > 0) {
      out.record.t_syrk += host_apply_update(
          host,
          MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                   prod.ld()),
          f.u);
    }
    out.update_ready_at = clock.now();
  } else {
    out.record.t_copy += dev.copy_from_device_sync(panel_d, 0, 0, f.l1, clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.copy_from_device_sync(panel_d, f.k, 0, f.l2, clock);
      out.record.t_copy +=
          dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
      out.record.t_syrk += host_apply_update(
          host,
          MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                   prod.ld()),
          f.u);
    }
    out.update_ready_at = clock.now();
  }
  out.record.t_total = clock.now() - t0;
  return out;
}

DispatchExecutor::DispatchExecutor(std::string name, Chooser chooser,
                                   ExecutorOptions options)
    : name_(std::move(name)), chooser_(std::move(chooser)), options_(options) {
  for (int p = 1; p <= 4; ++p) {
    executors_[static_cast<std::size_t>(p - 1)] =
        std::make_unique<PolicyExecutor>(policy_from_index(p), options);
  }
}

void DispatchExecutor::prepare(index_t max_m, index_t max_k,
                               FactorContext& ctx) {
  for (auto& exec : executors_) exec->prepare(max_m, max_k, ctx);
}

FuOutcome DispatchExecutor::execute(FrontBlocks front, FactorContext& ctx) {
  Policy choice = chooser_(front.m, front.k);
  if (ctx.device == nullptr) choice = Policy::P1;
  const bool tolerant =
      options_.fault_tolerance != FaultTolerance::Off &&
      ctx.device != nullptr &&
      (options_.fault_tolerance == FaultTolerance::On ||
       ctx.device->fault_injector().enabled());
  if (tolerant &&
      (quarantined_ || ctx.device->fault_injector().dead())) {
    // Circuit breaker tripped (or the device died): CPU-only from here on.
    choice = Policy::P1;
  }
  const bool audited = obs::enabled();
  if (audited) {
    obs::MetricsRegistry::global().increment(
        "policy.selected.p" + std::to_string(static_cast<int>(choice)));
  }
  FuOutcome outcome =
      (tolerant && choice != Policy::P1)
          ? execute_tolerant(front, ctx, choice)
          : executors_[static_cast<std::size_t>(static_cast<int>(choice) - 1)]
                ->execute(front, ctx);
  if (audited) {
    obs::PolicyDecision decision;
    decision.m = front.m;
    decision.k = front.k;
    decision.policy = outcome.record.policy;
    if (predictor_) decision.predicted_seconds = predictor_(front.m, front.k, choice);
    decision.measured_seconds = outcome.record.t_total;
    decision.request_id = obs::current_request_id();
    obs::DecisionLog::global().record(decision);
  }
  return outcome;
}

void DispatchExecutor::snapshot_front(const FrontBlocks& front) {
  snapshot_.clear();
  append_block(const_view(front.l1), snapshot_);
  if (front.m > 0) {
    append_block(const_view(front.l2), snapshot_);
    append_block(const_view(front.u), snapshot_);
  }
}

void DispatchExecutor::restore_front(const FrontBlocks& front) const {
  std::size_t at = restore_block(front.l1, snapshot_, 0);
  if (front.m > 0) {
    at = restore_block(front.l2, snapshot_, at);
    restore_block(front.u, snapshot_, at);
  }
}

FuOutcome DispatchExecutor::execute_tolerant(const FrontBlocks& front,
                                             FactorContext& ctx,
                                             Policy choice) {
  Device& dev = *ctx.device;
  FaultInjector& injector = dev.fault_injector();
  // Front-scoped sampling: the fault schedule depends on the front's
  // identity, not on which worker or in what order it executes.
  injector.begin_scope(static_cast<std::uint64_t>(front.global_col));
  const bool numeric = ctx.numeric;
  if (numeric) snapshot_front(front);

  const bool audited = obs::enabled();
  const double t0 = ctx.host_clock.now();
  const auto exec_index = [](Policy p) {
    return static_cast<std::size_t>(static_cast<int>(p) - 1);
  };
  int faults = 0;
  const int max_device_attempts = 2;  // first try + one on-device retry
  for (int attempt = 0; attempt < max_device_attempts; ++attempt) {
    const double attempt_t0 = ctx.host_clock.now();
    FaultKind observed = FaultKind::None;
    bool retriable = true;
    try {
      FuOutcome out =
          executors_[exec_index(choice)]->execute(front, ctx);
      // Corruption can slip through without an exception — validate the
      // returned panels before trusting them.
      if (!numeric || front_finite(front)) {
        out.record.faults = faults;
        out.record.t_total = ctx.host_clock.now() - t0;
        return out;
      }
      observed = FaultKind::TransferCorruption;
    } catch (const NotPositiveDefiniteError& e) {
      // A NaN pivot is injected corruption reaching the panel
      // factorization; a finite non-positive pivot is a genuinely
      // indefinite matrix and must propagate.
      if (!std::isnan(e.pivot())) throw;
      observed = FaultKind::TransferCorruption;
    } catch (const DeviceFaultError& e) {
      observed = e.sticky() ? FaultKind::DeviceDeath
                            : FaultKind::TransientKernel;
      retriable = !e.sticky();
    } catch (const DeviceOutOfMemoryError&) {
      observed = FaultKind::SpuriousOom;
    }

    // The attempt faulted. Drain in-flight device work (charging the
    // wasted async time to the virtual clock) and restore the front.
    dev.synchronize(ctx.host_clock);
    const double wasted = ctx.host_clock.now() - attempt_t0;
    if (numeric) restore_front(front);
    ++faults;
    ++fault_count_;
    bool newly_quarantined = false;
    if (options_.quarantine_after_faults > 0 && !quarantined_ &&
        fault_count_ >= options_.quarantine_after_faults) {
      quarantined_ = true;
      newly_quarantined = true;
    }
    const bool will_retry = retriable && !injector.dead() &&
                            !quarantined_ &&
                            attempt + 1 < max_device_attempts;
    if (audited) {
      auto& metrics = obs::MetricsRegistry::global();
      metrics.increment(std::string("fault.detected.") +
                        fault_kind_name(observed));
      metrics.add("fault.wasted_seconds", wasted);
      metrics.increment(will_retry ? "fault.retries" : "fault.fallbacks");
      if (newly_quarantined) metrics.increment("fault.quarantines");
      obs::FaultEvent event;
      event.m = front.m;
      event.k = front.k;
      event.policy = static_cast<int>(choice);
      event.kind = static_cast<int>(observed);
      event.attempt = attempt;
      event.fell_back = !will_retry;
      event.quarantined = newly_quarantined;
      event.wasted_seconds = wasted;
      event.request_id = obs::current_request_id();
      obs::DecisionLog::global().record_fault(event);
    }
    if (!will_retry) break;
  }

  // On-device attempts exhausted: redo the whole front on the host P1
  // path. The virtual clock already carries the wasted GPU time; the CPU
  // redo now adds its full cost on top.
  FuOutcome out =
      executors_[exec_index(Policy::P1)]->execute(front, ctx);
  out.record.faults = faults;
  out.record.fell_back = true;
  out.record.t_total = ctx.host_clock.now() - t0;
  out.update_ready_at = std::max(out.update_ready_at, ctx.host_clock.now());
  return out;
}

PolicyTimer::PolicyTimer(ExecutorOptions options, ProcessorModel host,
                         Device::Options device_options, bool warm_pools) {
  device_options.numeric = false;
  device_ = std::make_unique<Device>(device_options);
  ctx_.host_model = host;
  ctx_.device = device_.get();
  ctx_.numeric = false;
  for (int p = 1; p <= 4; ++p) {
    executors_[static_cast<std::size_t>(p - 1)] =
        std::make_unique<PolicyExecutor>(policy_from_index(p), options);
  }
  if (warm_pools) warm_up(10000, 10000);
}

void PolicyTimer::warm_up(index_t m, index_t k) {
  for (int p = 1; p <= 4; ++p) {
    (void)time(policy_from_index(p), m, k);
  }
}

FuCallRecord PolicyTimer::record(Policy policy, index_t m, index_t k) {
  // Drain in-flight transfers left by the previous measurement (e.g. the
  // copy-optimized P4's deferred panel copy) so each call is timed in
  // isolation.
  device_->synchronize(ctx_.host_clock);
  FrontBlocks blocks = make_shape_blocks(m, k);
  auto& exec =
      *executors_[static_cast<std::size_t>(static_cast<int>(policy) - 1)];
  const FuOutcome out = exec.execute(blocks, ctx_);
  return out.record;
}

double PolicyTimer::time(Policy policy, index_t m, index_t k) {
  return record(policy, m, k).t_total;
}

Policy PolicyTimer::best_policy(index_t m, index_t k) {
  Policy best = Policy::P1;
  double best_time = time(Policy::P1, m, k);
  for (Policy p : {Policy::P2, Policy::P3, Policy::P4}) {
    const double t = time(p, m, k);
    if (t < best_time) {
      best_time = t;
      best = p;
    }
  }
  return best;
}

}  // namespace mfgpu
