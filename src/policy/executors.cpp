#include "policy/executors.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "dense/blas.hpp"
#include "dense/potrf.hpp"
#include "gpusim/cost_class.hpp"
#include "obs/decision_log.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "policy/p4_gpu_potrf.hpp"

namespace mfgpu {
namespace {

std::int64_t float_bytes(index_t rows, index_t cols) {
  return static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols) *
         static_cast<std::int64_t>(sizeof(float));
}

/// Finite check over the block's valid entries; lower_only limits the scan
/// to the lower triangle (L1 and U carry garbage above the diagonal).
bool block_finite(MatrixView<const double> v, bool lower_only) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = lower_only ? j : 0; i < v.rows(); ++i) {
      if (!std::isfinite(v(i, j))) return false;
    }
  }
  return true;
}

MatrixView<const double> const_view(const MatrixView<double>& v) {
  return MatrixView<const double>(v.data(), v.rows(), v.cols(), v.ld());
}

/// Validate the panels a GPU policy returned: corruption shows up as
/// non-finite entries (transfer poisoning, NaN propagation through kernels).
bool front_finite(const FrontBlocks& f) {
  if (!block_finite(const_view(f.l1), /*lower_only=*/true)) return false;
  if (f.m > 0) {
    if (!block_finite(const_view(f.l2), /*lower_only=*/false)) return false;
    if (!block_finite(const_view(f.u), /*lower_only=*/true)) return false;
  }
  return true;
}

void append_block(const MatrixView<const double>& v, std::vector<double>& buf) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = 0; i < v.rows(); ++i) buf.push_back(v(i, j));
  }
}

std::size_t restore_block(const MatrixView<double>& v,
                          const std::vector<double>& buf, std::size_t at) {
  for (index_t j = 0; j < v.cols(); ++j) {
    for (index_t i = 0; i < v.rows(); ++i) v(i, j) = buf[at++];
  }
  return at;
}

/// Core of the aggregated small-front path (Policy::Batched), shared by
/// DispatchExecutor::execute_batch and PolicyTimer::time_batched. The whole
/// group runs as ONE simulated dispatch: three shared device slabs (each
/// member a row band), one coalesced upload (every member's L1 + L2),
/// batched potrf/trsm/syrk launches, one coalesced download (factored L1,
/// L2, and the update product). The simulated kernels are priced FP64 batched launches
/// (gpublas.hpp): the authoritative member math runs here on the host in
/// double — exactly the per-front P1 kernels, in ascending member order —
/// so the factor is bitwise identical to the per-front host path no matter
/// how the fronts were grouped. Members that fault are marked in
/// `skip`/`faulted` with their time still charged and their panels left
/// untouched; the caller degrades them per-front. Outcome records carry
/// each member's amortized share of the dispatch (marginal kernel time +
/// 1/B of the launch latency).
std::vector<FuOutcome> run_batched_dispatch(std::span<FrontBlocks> fronts,
                                            FactorContext& ctx,
                                            std::span<char> skip,
                                            std::vector<BatchFault>& faulted,
                                            std::vector<Matrix<double>>& prods) {
  const std::size_t n = fronts.size();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  HostExec host = ctx.host_exec();
  GpuExec compute = ctx.gpu_exec(dev.compute_stream());
  FaultInjector& injector = dev.fault_injector();
  const ProcessorModel& model = dev.model();

  std::vector<FuOutcome> outcomes(n);
  std::vector<std::uint64_t> scopes(n), ops(n, 0);
  std::vector<char> charged(n, 0);
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scopes[i] = static_cast<std::uint64_t>(fronts[i].global_col);
    if (skip[i] == 0) {
      charged[i] = 1;
      ++active;
    }
  }
  if (active == 0) return outcomes;

  // Three shared device slabs per dispatch (batched-BLAS workspace style):
  // each member owns a row band at a fixed offset. The three pool slots are
  // high-water reused across dispatches, so slab growth is charged like any
  // other pool warm-up instead of 3B per-member cudaMalloc latencies. Alloc
  // faults sample under the first active member's scope — an injected OOM
  // or death aborts the whole dispatch no matter which member it lands on.
  std::vector<index_t> l1_off(n, 0), l2_off(n, 0);
  index_t l1_rows = 0, l2_rows = 0, slab_k = 0, slab_m = 0;
  std::int64_t h2d_bytes = 0, d2h_bytes = 0;
  std::size_t first_active = n;
  for (std::size_t i = 0; i < n; ++i) {
    const FrontBlocks& f = fronts[i];
    l1_off[i] = l1_rows;
    l2_off[i] = l2_rows;
    l1_rows += f.k;
    l2_rows += f.m;
    slab_k = std::max(slab_k, f.k);
    slab_m = std::max(slab_m, f.m);
    if (skip[i] != 0) continue;
    if (first_active == n) first_active = i;
    h2d_bytes += float_bytes(f.k, f.k) + float_bytes(f.m, f.k);
    d2h_bytes += float_bytes(f.k, f.k) + float_bytes(f.m, f.k) +
                 float_bytes(f.m, f.m);
  }
  injector.resume_scope(scopes[first_active], ops[first_active]);
  DeviceMatrix l1_slab = dev.allocate(l1_rows, slab_k, "batch.l1", clock);
  DeviceMatrix l2_slab = dev.allocate(l2_rows, slab_k, "batch.l2", clock);
  DeviceMatrix prod_slab = dev.allocate(l2_rows, slab_m, "batch.prod", clock);
  ops[first_active] = injector.op_index();

  // One pinned staging slab per direction for the whole batch. Growing it
  // is history-dependent (like pool warm-up), so injection is suppressed —
  // it must not shift any member's per-front fault schedule.
  double t_copy_total = 0.0;
  {
    FaultSuppressionGuard no_faults(&injector);
    t_copy_total += dev.acquire_pinned("batch.h2d", h2d_bytes, clock);
    t_copy_total += dev.acquire_pinned("batch.d2h", d2h_bytes, clock);
  }

  // Host-side download staging shaped like each front. The batched device
  // kernels are priced, not computed (gpublas.hpp), so the downloads land
  // here — never in the panels — and only serve transfer validation: an
  // injected corruption in either direction surfaces as a non-finite entry
  // in these copies.
  if (prods.size() < n) prods.resize(n);
  const bool stage_real = dev.numeric();
  std::vector<MatrixView<double>> l1_stage(n), l2_stage(n), prod_stage(n);
  for (std::size_t i = 0; i < n; ++i) {
    const index_t m = fronts[i].m;
    const index_t k = fronts[i].k;
    if (!stage_real) {
      l1_stage[i] = MatrixView<double>(nullptr, k, k, std::max<index_t>(k, 1));
      l2_stage[i] = MatrixView<double>(nullptr, m, k, std::max<index_t>(m, 1));
      prod_stage[i] =
          MatrixView<double>(nullptr, m, m, std::max<index_t>(m, 1));
    } else {
      const index_t order = m + k;
      if (prods[i].rows() < order) prods[i] = Matrix<double>(order, order);
      l1_stage[i] = prods[i].view().block(0, 0, k, k);
      l2_stage[i] = prods[i].view().block(k, 0, m, k);
      prod_stage[i] = prods[i].view().block(k, k, m, m);
    }
  }

  // ONE coalesced upload: each member's L1 then L2, member-major. Each item
  // consumes exactly one fault op, so the per-item op indices are knowable
  // up front; the member counters resume from the written-back values.
  {
    std::vector<Device::H2dCopy> up;
    std::vector<std::uint64_t> item_scopes, item_ops;
    std::vector<char> item_skip;
    up.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const FrontBlocks& f = fronts[i];
      up.push_back(Device::H2dCopy{const_view(f.l1), &l1_slab, l1_off[i], 0});
      up.push_back(Device::H2dCopy{const_view(f.l2), &l2_slab, l2_off[i], 0});
      item_scopes.insert(item_scopes.end(), {scopes[i], scopes[i]});
      item_ops.insert(item_ops.end(), {ops[i], ops[i] + 1});
      item_skip.insert(item_skip.end(), {skip[i], skip[i]});
    }
    t_copy_total += dev.copy_to_device_async_batched(
        up, item_scopes, item_ops, item_skip, dev.h2d_stream(), clock);
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] == 0) ops[i] = item_ops[2 * i + 1];
    }
  }

  // Aggregated kernels: one launch each, per-member flop time.
  std::vector<DevBlock> l1_blocks(n), l2_blocks(n), prod_blocks(n);
  std::vector<index_t> col_offsets(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (skip[i] != 0) continue;
    const FrontBlocks& f = fronts[i];
    l1_blocks[i] = dev_block(l1_slab, l1_off[i], 0, f.k, f.k);
    l2_blocks[i] = dev_block(l2_slab, l2_off[i], 0, f.m, f.k);
    prod_blocks[i] = dev_block(prod_slab, l2_off[i], 0, f.m, f.m);
    col_offsets[i] = f.global_col;
  }
  gpu_potrf_batched(compute, l1_blocks, col_offsets, scopes, ops, skip,
                    faulted);
  gpu_trsm_batched(compute, l1_blocks, l2_blocks, scopes, ops, skip, faulted);
  gpu_syrk_batched(compute, 1.0f, l2_blocks, prod_blocks, scopes, ops, skip,
                   faulted);

  // ONE coalesced download: factored L1, solved L2, and the product.
  {
    std::vector<Device::D2hCopy> down;
    std::vector<std::uint64_t> item_scopes, item_ops;
    std::vector<char> item_skip;
    down.reserve(3 * n);
    for (std::size_t i = 0; i < n; ++i) {
      down.push_back(Device::D2hCopy{&l1_slab, l1_off[i], 0, l1_stage[i]});
      down.push_back(Device::D2hCopy{&l2_slab, l2_off[i], 0, l2_stage[i]});
      down.push_back(
          Device::D2hCopy{&prod_slab, l2_off[i], 0, prod_stage[i]});
      item_scopes.insert(item_scopes.end(),
                         {scopes[i], scopes[i], scopes[i]});
      item_ops.insert(item_ops.end(), {ops[i], ops[i] + 1, ops[i] + 2});
      item_skip.insert(item_skip.end(), {skip[i], skip[i], skip[i]});
    }
    t_copy_total += dev.copy_from_device_async_batched(
        down, item_scopes, item_ops, item_skip, dev.d2h_stream(), clock);
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] == 0) ops[i] = item_ops[3 * i + 2];
    }
  }
  dev.synchronize_stream(dev.d2h_stream(), clock);

  // Validate the downloads: injected transfer corruption (either
  // direction) ends up as a non-finite entry in the staged copies. The
  // member's panels are untouched — mark it faulted and let the caller
  // re-run it per-front.
  if (stage_real) {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      if (!block_finite(const_view(l1_stage[i]), /*lower_only=*/false) ||
          !block_finite(const_view(l2_stage[i]), /*lower_only=*/false) ||
          !block_finite(const_view(prod_stage[i]), /*lower_only=*/false)) {
        skip[i] = 1;
        faulted.push_back(BatchFault{i, FaultKind::TransferCorruption});
      }
    }
  }

  // The authoritative member math, ascending member order (the
  // deterministic reduction order): the same double-precision kernels the
  // per-front host path (P1) runs, so grouping never changes a bit of the
  // factor — only the charged time comes from the dispatch above. The host
  // still pays the update-apply staging cost, like every other policy.
  std::vector<double> t_apply(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (skip[i] != 0) continue;
    const FrontBlocks& f = fronts[i];
    if (f.m > 0) {
      t_apply[i] = host_assembly_cost(
          host,
          0.5 * static_cast<double>(f.m) * static_cast<double>(f.m + 1));
    }
    if (!ctx.numeric) continue;
    potrf<double>(f.l1, 64, f.global_col);
    if (f.m > 0) {
      trsm<double>(Side::Right, Uplo::Lower, Trans::Transpose, Diag::NonUnit,
                   1.0, const_view(f.l1), f.l2);
      syrk_lower<double>(-1.0, const_view(f.l2), 1.0, f.u);
    }
  }

  // Per-member amortized shares: marginal kernel time (at the member's own
  // tile-shape rate) plus 1/B of each launch's fixed overhead (latency +
  // utilization ramp); copies pro-rated by bytes. Faulted members keep
  // their share (it is the time the fault wasted).
  const double nb = static_cast<double>(active);
  const double total_bytes = static_cast<double>(h2d_bytes + d2h_bytes);
  const double ready_at = clock.now();
  for (std::size_t i = 0; i < n; ++i) {
    if (charged[i] == 0) continue;
    const FrontBlocks& f = fronts[i];
    FuCallRecord& r = outcomes[i].record;
    r.snode = f.snode;
    r.m = f.m;
    r.k = f.k;
    r.policy = static_cast<int>(Policy::Batched);
    r.batch = static_cast<int>(active);
    const double kd = static_cast<double>(f.k);
    const double md = static_cast<double>(f.m);
    r.t_potrf =
        model.potrf.marginal_time(static_cast<double>(potrf_ops(f.k)), kd) +
        model.potrf.batch_overhead() / nb;
    r.t_trsm = model.trsm.marginal_time(
                   static_cast<double>(trsm_ops(f.m, f.k)), std::min(md, kd)) +
               model.trsm.batch_overhead() / nb;
    r.t_syrk = model.syrk.marginal_time(
                   static_cast<double>(syrk_ops(f.m, f.k)), std::min(md, kd)) +
               model.syrk.batch_overhead() / nb + t_apply[i];
    const double member_bytes = static_cast<double>(
        2 * (float_bytes(f.k, f.k) + float_bytes(f.m, f.k)) +
        float_bytes(f.m, f.m));
    r.t_copy = total_bytes > 0.0
                   ? t_copy_total * member_bytes / total_bytes
                   : 0.0;
    r.t_total = r.t_potrf + r.t_trsm + r.t_syrk + r.t_copy;
    outcomes[i].update_ready_at = ready_at;
  }
  return outcomes;
}

}  // namespace

PolicyExecutor::PolicyExecutor(Policy policy, ExecutorOptions options)
    : policy_(policy), options_(options), name_(policy_name(policy)) {}

void PolicyExecutor::prepare(index_t max_m, index_t max_k,
                             FactorContext& ctx) {
  // Record the symbolic maximum; the pools are sized lazily at this
  // policy's first actual use, so a dispatcher that never routes a call
  // here pays nothing.
  (void)ctx;
  prepared_m_ = max_m;
  prepared_k_ = max_k;
  prepared_applied_ = false;
}

void PolicyExecutor::ensure_prepared(FactorContext& ctx) {
  if (prepared_applied_ || prepared_m_ < 0 || ctx.device == nullptr ||
      policy_ == Policy::P1) {
    return;
  }
  prepared_applied_ = true;
  Device& dev = *ctx.device;
  // Pool warm-up happens on a worker's first use of this policy — a
  // history-dependent moment. Suppress injection so it neither faults nor
  // shifts the per-front fault schedule (see fault_injector.hpp).
  FaultSuppressionGuard no_faults(&dev.fault_injector());
  SimClock& clock = ctx.host_clock;
  const index_t m = prepared_m_, k = prepared_k_;
  switch (policy_) {
    case Policy::P1:
      break;
    case Policy::P2:
      dev.allocate(m, k, "p2.l2", clock);
      dev.allocate(m, m, "p2.prod", clock);
      dev.acquire_pinned("p2.l2", float_bytes(m, k), clock);
      dev.acquire_pinned("p2.prod", float_bytes(m, m), clock);
      break;
    case Policy::P3:
      dev.allocate(k, k, "p3.l1", clock);
      dev.allocate(m, k, "p3.l2", clock);
      dev.allocate(m, m, "p3.prod", clock);
      dev.acquire_pinned("p3.l1", float_bytes(k, k), clock);
      dev.acquire_pinned("p3.l2", float_bytes(m, k), clock);
      dev.acquire_pinned("p3.prod", float_bytes(m, m), clock);
      break;
    case Policy::P4:
      dev.allocate(k + m, k, "p4.panel", clock);
      dev.allocate(m, m, "p4.prod", clock);
      dev.acquire_pinned("p4.panel", float_bytes(k + m, k), clock);
      dev.acquire_pinned("p4.prod", float_bytes(m, m), clock);
      break;
  }
}

MatrixView<double> PolicyExecutor::product_view(index_t m, bool numeric) {
  if (!numeric) {
    return MatrixView<double>(nullptr, m, m, std::max<index_t>(m, 1));
  }
  if (product_scratch_.rows() < m) {
    product_scratch_ = Matrix<double>(m, m);
  }
  return product_scratch_.view().block(0, 0, m, m);
}

FuOutcome PolicyExecutor::execute(FrontBlocks front, FactorContext& ctx) {
  MFGPU_CHECK(front.k > 0, "PolicyExecutor: empty pivot block");
  MFGPU_CHECK(policy_ == Policy::P1 || ctx.device != nullptr,
              "PolicyExecutor: GPU policy requires a device");
  MFGPU_CHECK(ctx.device == nullptr || ctx.device->numeric() == ctx.numeric,
              "PolicyExecutor: context and device must agree on numeric vs "
              "dry-run mode");
  ensure_prepared(ctx);
  switch (policy_) {
    case Policy::P1: return run_p1(front, ctx);
    case Policy::P2: return run_p2(front, ctx);
    case Policy::P3: return run_p3(front, ctx);
    case Policy::P4: return run_p4(front, ctx);
  }
  throw InvalidArgumentError("PolicyExecutor: invalid policy");
}

FuOutcome PolicyExecutor::run_p1(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 1;
  const double t0 = ctx.host_clock.now();

  out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
  if (f.m > 0) {
    out.record.t_trsm = host_trsm(host, f.l1, f.l2);
    out.record.t_syrk = host_syrk(host, -1.0, f.l2, f.u);
  }
  out.record.t_total = ctx.host_clock.now() - t0;
  out.update_ready_at = ctx.host_clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p2(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 2;
  const double t0 = clock.now();

  out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
  if (f.m > 0) {
    out.record.t_trsm = host_trsm(host, f.l1, f.l2);

    DeviceMatrix l2_d = dev.allocate(f.m, f.k, "p2.l2", clock);
    DeviceMatrix prod_d = dev.allocate(f.m, f.m, "p2.prod", clock);
    MatrixView<double> prod = product_view(f.m, ctx.numeric);
    if (options_.overlapped_copies) {
      out.record.t_copy +=
          dev.acquire_pinned("p2.l2", float_bytes(f.m, f.k), clock);
      out.record.t_copy +=
          dev.acquire_pinned("p2.prod", float_bytes(f.m, f.m), clock);
      out.record.t_copy +=
          dev.copy_to_device_async(f.l2, l2_d, 0, 0, dev.h2d_stream(), clock);
      out.record.t_syrk = gpu_syrk(ctx.gpu_exec(dev.compute_stream()), 1.0f,
                                   dev_whole(l2_d), dev_whole(prod_d));
      out.record.t_copy += dev.copy_from_device_async(
          prod_d, 0, 0, prod, dev.d2h_stream(), clock);
      dev.synchronize_stream(dev.d2h_stream(), clock);
    } else {
      out.record.t_copy += dev.copy_to_device_sync(f.l2, l2_d, 0, 0, clock);
      out.record.t_syrk = gpu_syrk(ctx.gpu_exec(dev.compute_stream()), 1.0f,
                                   dev_whole(l2_d), dev_whole(prod_d));
      out.record.t_copy += dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
    }
    out.record.t_syrk += host_apply_update(
        host,
        MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                 prod.ld()),
        f.u);
  }
  out.record.t_total = clock.now() - t0;
  out.update_ready_at = clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p3(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 3;
  const double t0 = clock.now();

  if (f.m == 0) {
    // Nothing to offload: P3 degenerates to the host potrf.
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_total = clock.now() - t0;
    out.update_ready_at = clock.now();
    return out;
  }

  DeviceMatrix l1_d = dev.allocate(f.k, f.k, "p3.l1", clock);
  DeviceMatrix l2_d = dev.allocate(f.m, f.k, "p3.l2", clock);
  DeviceMatrix prod_d = dev.allocate(f.m, f.m, "p3.prod", clock);
  MatrixView<double> prod = product_view(f.m, ctx.numeric);
  GpuExec compute = ctx.gpu_exec(dev.compute_stream());

  if (options_.overlapped_copies) {
    out.record.t_copy +=
        dev.acquire_pinned("p3.l1", float_bytes(f.k, f.k), clock);
    out.record.t_copy +=
        dev.acquire_pinned("p3.l2", float_bytes(f.m, f.k), clock);
    out.record.t_copy +=
        dev.acquire_pinned("p3.prod", float_bytes(f.m, f.m), clock);
    // Ship the unsolved L2 while the host factors the pivot block (§V-A2).
    out.record.t_copy +=
        dev.copy_to_device_async(f.l2, l2_d, 0, 0, dev.h2d_stream(), clock);
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_copy +=
        dev.copy_to_device_async(f.l1, l1_d, 0, 0, dev.h2d_stream(), clock);
    out.record.t_trsm = gpu_trsm(compute, dev_whole(l1_d), dev_whole(l2_d));
    // Solved L2 streams back while the syrk runs.
    out.record.t_copy += dev.copy_from_device_async(l2_d, 0, 0, f.l2,
                                                    dev.d2h_stream(), clock);
    out.record.t_syrk =
        gpu_syrk(compute, 1.0f, dev_whole(l2_d), dev_whole(prod_d));
    out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                    dev.d2h_stream(), clock);
    dev.synchronize_stream(dev.d2h_stream(), clock);
  } else {
    // Basic implementation (paper Section IV): pageable synchronous copies.
    out.record.t_potrf = host_potrf(host, f.l1, f.global_col);
    out.record.t_copy += dev.copy_to_device_sync(f.l1, l1_d, 0, 0, clock);
    out.record.t_copy += dev.copy_to_device_sync(f.l2, l2_d, 0, 0, clock);
    out.record.t_trsm = gpu_trsm(compute, dev_whole(l1_d), dev_whole(l2_d));
    out.record.t_copy += dev.copy_from_device_sync(l2_d, 0, 0, f.l2, clock);
    out.record.t_syrk =
        gpu_syrk(compute, 1.0f, dev_whole(l2_d), dev_whole(prod_d));
    out.record.t_copy += dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
  }
  out.record.t_syrk += host_apply_update(
      host,
      MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                               prod.ld()),
      f.u);
  out.record.t_total = clock.now() - t0;
  out.update_ready_at = clock.now();
  return out;
}

FuOutcome PolicyExecutor::run_p4(const FrontBlocks& f, FactorContext& ctx) {
  HostExec host = ctx.host_exec();
  Device& dev = *ctx.device;
  SimClock& clock = ctx.host_clock;
  FuOutcome out;
  out.record.m = f.m;
  out.record.k = f.k;
  out.record.policy = 4;
  const double t0 = clock.now();

  DeviceMatrix panel_d = dev.allocate(f.k + f.m, f.k, "p4.panel", clock);
  DeviceMatrix prod_d =
      (f.m > 0) ? dev.allocate(f.m, f.m, "p4.prod", clock) : DeviceMatrix{};
  MatrixView<double> prod = product_view(f.m, ctx.numeric);
  GpuExec compute = ctx.gpu_exec(dev.compute_stream());
  const index_t w = (options_.p4_panel_width > 0)
                        ? options_.p4_panel_width
                        : p4_auto_panel_width(f.k, f.m);
  const bool async = options_.overlapped_copies || options_.copy_optimized_p4;

  // Upload L1 and L2 into the combined panel.
  if (async) {
    out.record.t_copy +=
        dev.acquire_pinned("p4.panel", float_bytes(f.k + f.m, f.k), clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.acquire_pinned("p4.prod", float_bytes(f.m, f.m), clock);
    }
    out.record.t_copy +=
        dev.copy_to_device_async(f.l1, panel_d, 0, 0, dev.h2d_stream(), clock);
    if (f.m > 0) {
      out.record.t_copy += dev.copy_to_device_async(f.l2, panel_d, f.k, 0,
                                                    dev.h2d_stream(), clock);
    }
  } else {
    out.record.t_copy += dev.copy_to_device_sync(f.l1, panel_d, 0, 0, clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.copy_to_device_sync(f.l2, panel_d, f.k, 0, clock);
    }
  }

  const P4KernelTimes times =
      p4_factor_on_gpu(compute, panel_d, (f.m > 0) ? &prod_d : nullptr, f.m,
                       f.k, w, f.global_col);
  out.record.t_potrf = times.potrf;
  out.record.t_trsm = times.trsm + times.gemm;
  out.record.t_syrk = times.syrk;

  if (options_.copy_optimized_p4 && f.m > 0) {
    // Wait only for the update matrix; the factored panel streams back
    // behind it while the host proceeds to the next front.
    out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                    dev.d2h_stream(), clock);
    const Event prod_done = dev.record(dev.d2h_stream());
    out.record.t_copy += dev.copy_from_device_async(panel_d, 0, 0, f.l1,
                                                    dev.d2h_stream(), clock);
    out.record.t_copy += dev.copy_from_device_async(panel_d, f.k, 0, f.l2,
                                                    dev.d2h_stream(), clock);
    {
      CostClassScope stall_cls(CostClass::Transfer);
      clock.advance_to(prod_done.time);
    }
    out.record.t_syrk += host_apply_update(
        host,
        MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                 prod.ld()),
        f.u);
    out.update_ready_at = clock.now();
  } else if (async) {
    out.record.t_copy += dev.copy_from_device_async(panel_d, 0, 0, f.l1,
                                                    dev.d2h_stream(), clock);
    if (f.m > 0) {
      out.record.t_copy += dev.copy_from_device_async(panel_d, f.k, 0, f.l2,
                                                      dev.d2h_stream(), clock);
      out.record.t_copy += dev.copy_from_device_async(prod_d, 0, 0, prod,
                                                      dev.d2h_stream(), clock);
    }
    dev.synchronize_stream(dev.d2h_stream(), clock);
    if (f.m > 0) {
      out.record.t_syrk += host_apply_update(
          host,
          MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                   prod.ld()),
          f.u);
    }
    out.update_ready_at = clock.now();
  } else {
    out.record.t_copy += dev.copy_from_device_sync(panel_d, 0, 0, f.l1, clock);
    if (f.m > 0) {
      out.record.t_copy +=
          dev.copy_from_device_sync(panel_d, f.k, 0, f.l2, clock);
      out.record.t_copy +=
          dev.copy_from_device_sync(prod_d, 0, 0, prod, clock);
      out.record.t_syrk += host_apply_update(
          host,
          MatrixView<const double>(prod.data(), prod.rows(), prod.cols(),
                                   prod.ld()),
          f.u);
    }
    out.update_ready_at = clock.now();
  }
  out.record.t_total = clock.now() - t0;
  return out;
}

DispatchExecutor::DispatchExecutor(std::string name, Chooser chooser,
                                   ExecutorOptions options)
    : name_(std::move(name)), chooser_(std::move(chooser)), options_(options) {
  for (int p = 1; p <= 4; ++p) {
    executors_[static_cast<std::size_t>(p - 1)] =
        std::make_unique<PolicyExecutor>(policy_from_index(p), options);
  }
}

void DispatchExecutor::prepare(index_t max_m, index_t max_k,
                               FactorContext& ctx) {
  for (auto& exec : executors_) exec->prepare(max_m, max_k, ctx);
}

FuOutcome DispatchExecutor::execute(FrontBlocks front, FactorContext& ctx) {
  Policy choice = chooser_(front.call());
  if (ctx.device == nullptr || choice == Policy::Batched) {
    // Batched is a dispatch-level aggregation, not a per-front execution
    // plan — a chooser returning it for a lone call degrades to P1.
    choice = Policy::P1;
  }
  const bool tolerant =
      options_.fault_tolerance != FaultTolerance::Off &&
      ctx.device != nullptr &&
      (options_.fault_tolerance == FaultTolerance::On ||
       ctx.device->fault_injector().enabled());
  if (tolerant &&
      (quarantined_ || ctx.device->fault_injector().dead())) {
    // Circuit breaker tripped (or the device died): CPU-only from here on.
    choice = Policy::P1;
  }
  const bool audited = obs::enabled();
  if (audited) {
    obs::MetricsRegistry::global().increment(
        "policy.selected.p" + std::to_string(static_cast<int>(choice)));
  }
  FuOutcome outcome =
      (tolerant && choice != Policy::P1)
          ? execute_tolerant(front, ctx, choice)
          : executors_[static_cast<std::size_t>(static_cast<int>(choice) - 1)]
                ->execute(front, ctx);
  if (audited) {
    obs::PolicyDecision decision;
    decision.call = front.call();
    decision.policy = outcome.record.policy;
    if (predictor_) {
      decision.predicted_seconds = predictor_(front.call(), choice);
    }
    decision.measured_seconds = outcome.record.t_total;
    decision.request_id = obs::current_request_id();
    obs::DecisionLog::global().record(decision);
  }
  return outcome;
}

std::vector<FuOutcome> DispatchExecutor::batch_singles(
    std::span<FrontBlocks> fronts, FactorContext& ctx) {
  std::vector<FuOutcome> outcomes;
  outcomes.reserve(fronts.size());
  for (FrontBlocks& front : fronts) outcomes.push_back(execute(front, ctx));
  return outcomes;
}

std::vector<FuOutcome> DispatchExecutor::execute_batch(
    std::span<FrontBlocks> fronts, FactorContext& ctx) {
  if (fronts.empty()) return {};
  const bool injecting =
      ctx.device != nullptr && ctx.device->fault_injector().enabled();
  const bool tolerant = options_.fault_tolerance != FaultTolerance::Off &&
                        ctx.device != nullptr &&
                        (options_.fault_tolerance == FaultTolerance::On ||
                         injecting);
  // Per-front loop when there is nothing to aggregate on: no device; the
  // breaker tripped (CPU-only); or faults are injected with tolerance
  // explicitly off, where batch-internal degradation would hide faults the
  // caller asked to observe.
  if (ctx.device == nullptr || (injecting && !tolerant) ||
      (tolerant && (quarantined_ || ctx.device->fault_injector().dead()))) {
    return batch_singles(fronts, ctx);
  }

  const std::size_t n = fronts.size();
  const bool audited = obs::enabled();
  const bool numeric = ctx.numeric;
  if (tolerant && numeric) {
    if (batch_snapshots_.size() < n) batch_snapshots_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      snapshot_front(fronts[i], batch_snapshots_[i]);
    }
  }

  std::vector<char> skip(n, 0);
  std::vector<BatchFault> faulted;
  std::vector<FuOutcome> outcomes;
  const double t0 = ctx.host_clock.now();
  bool batch_failed = false;
  FaultKind batch_kind = FaultKind::None;
  try {
    outcomes = run_batched_dispatch(fronts, ctx, skip, faulted, batch_prods_);
  } catch (const DeviceFaultError& e) {
    batch_failed = true;
    batch_kind =
        e.sticky() ? FaultKind::DeviceDeath : FaultKind::TransientKernel;
  } catch (const DeviceOutOfMemoryError&) {
    batch_failed = true;
    batch_kind = FaultKind::SpuriousOom;
  }
  if (batch_failed) {
    // The whole dispatch is lost (device death mid-batch, allocator
    // failure): drain, restore every member, and degrade them all to the
    // per-front path — which handles a dead injector by going CPU-only.
    ctx.device->synchronize(ctx.host_clock);
    const double wasted = ctx.host_clock.now() - t0;
    if (tolerant && numeric) {
      for (std::size_t i = 0; i < n; ++i) {
        restore_front(fronts[i], batch_snapshots_[i]);
      }
    }
    ++fault_count_;
    bool newly_quarantined = false;
    if (options_.quarantine_after_faults > 0 && !quarantined_ &&
        fault_count_ >= options_.quarantine_after_faults) {
      quarantined_ = true;
      newly_quarantined = true;
    }
    if (audited) {
      auto& metrics = obs::MetricsRegistry::global();
      metrics.increment(std::string("fault.detected.") +
                        fault_kind_name(batch_kind));
      metrics.add("fault.wasted_seconds", wasted);
      metrics.increment("batch.aborts");
      if (newly_quarantined) metrics.increment("fault.quarantines");
      obs::FaultEvent event;
      event.call = fronts[0].call();
      event.policy = static_cast<int>(Policy::Batched);
      event.kind = static_cast<int>(batch_kind);
      event.attempt = 0;
      event.fell_back = false;
      event.quarantined = newly_quarantined;
      event.wasted_seconds = wasted;
      event.request_id = obs::current_request_id();
      obs::DecisionLog::global().record_fault(event);
    }
    return batch_singles(fronts, ctx);
  }

  // (Transfer corruption is validated inside run_batched_dispatch against
  // the staged downloads; corrupted members arrive in `faulted` with their
  // panels untouched.)

  if (audited) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.increment("batch.dispatches");
    metrics.add("batch.fronts.dispatched", static_cast<double>(n));
    metrics.gauge_max("batch.width.max", static_cast<double>(n));
    metrics.add("policy.selected.batched",
                static_cast<double>(n - faulted.size()));
  }

  // Degrade faulted members individually: restore and re-run them through
  // the per-front path. The rest of the batch is untouched.
  for (const BatchFault& bf : faulted) {
    const std::size_t i = bf.index;
    ++fault_count_;
    bool newly_quarantined = false;
    if (options_.quarantine_after_faults > 0 && !quarantined_ &&
        fault_count_ >= options_.quarantine_after_faults) {
      quarantined_ = true;
      newly_quarantined = true;
    }
    if (audited) {
      auto& metrics = obs::MetricsRegistry::global();
      metrics.increment(std::string("fault.detected.") +
                        fault_kind_name(bf.kind));
      metrics.add("fault.wasted_seconds", outcomes[i].record.t_total);
      metrics.increment("batch.faulted");
      if (newly_quarantined) metrics.increment("fault.quarantines");
      obs::FaultEvent event;
      event.call = fronts[i].call();
      event.policy = static_cast<int>(Policy::Batched);
      event.kind = static_cast<int>(bf.kind);
      event.attempt = 0;
      event.fell_back = false;
      event.quarantined = newly_quarantined;
      event.wasted_seconds = outcomes[i].record.t_total;
      event.request_id = obs::current_request_id();
      obs::DecisionLog::global().record_fault(event);
    }
    if (tolerant && numeric) restore_front(fronts[i], batch_snapshots_[i]);
    const int wasted_faults = outcomes[i].record.faults;
    outcomes[i] = execute(fronts[i], ctx);
    outcomes[i].record.faults += wasted_faults + 1;
  }

  if (audited) {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      obs::PolicyDecision decision;
      decision.call = fronts[i].call();
      decision.policy = static_cast<int>(Policy::Batched);
      decision.batch = static_cast<int>(n);
      decision.measured_seconds = outcomes[i].record.t_total;
      decision.request_id = obs::current_request_id();
      obs::DecisionLog::global().record(decision);
    }
  }
  return outcomes;
}

void DispatchExecutor::snapshot_front(const FrontBlocks& front,
                                      std::vector<double>& buf) {
  buf.clear();
  append_block(const_view(front.l1), buf);
  if (front.m > 0) {
    append_block(const_view(front.l2), buf);
    append_block(const_view(front.u), buf);
  }
}

void DispatchExecutor::restore_front(const FrontBlocks& front,
                                     const std::vector<double>& buf) const {
  std::size_t at = restore_block(front.l1, buf, 0);
  if (front.m > 0) {
    at = restore_block(front.l2, buf, at);
    restore_block(front.u, buf, at);
  }
}

FuOutcome DispatchExecutor::execute_tolerant(const FrontBlocks& front,
                                             FactorContext& ctx,
                                             Policy choice) {
  Device& dev = *ctx.device;
  FaultInjector& injector = dev.fault_injector();
  // Front-scoped sampling: the fault schedule depends on the front's
  // identity, not on which worker or in what order it executes.
  injector.begin_scope(static_cast<std::uint64_t>(front.global_col));
  const bool numeric = ctx.numeric;
  if (numeric) snapshot_front(front, snapshot_);

  const bool audited = obs::enabled();
  const double t0 = ctx.host_clock.now();
  const auto exec_index = [](Policy p) {
    return static_cast<std::size_t>(static_cast<int>(p) - 1);
  };
  int faults = 0;
  const int max_device_attempts = 2;  // first try + one on-device retry
  for (int attempt = 0; attempt < max_device_attempts; ++attempt) {
    const double attempt_t0 = ctx.host_clock.now();
    FaultKind observed = FaultKind::None;
    bool retriable = true;
    try {
      FuOutcome out =
          executors_[exec_index(choice)]->execute(front, ctx);
      // Corruption can slip through without an exception — validate the
      // returned panels before trusting them.
      if (!numeric || front_finite(front)) {
        out.record.faults = faults;
        out.record.t_total = ctx.host_clock.now() - t0;
        return out;
      }
      observed = FaultKind::TransferCorruption;
    } catch (const NotPositiveDefiniteError& e) {
      // A NaN pivot is injected corruption reaching the panel
      // factorization; a finite non-positive pivot is a genuinely
      // indefinite matrix and must propagate.
      if (!std::isnan(e.pivot())) throw;
      observed = FaultKind::TransferCorruption;
    } catch (const DeviceFaultError& e) {
      observed = e.sticky() ? FaultKind::DeviceDeath
                            : FaultKind::TransientKernel;
      retriable = !e.sticky();
    } catch (const DeviceOutOfMemoryError&) {
      observed = FaultKind::SpuriousOom;
    }

    // The attempt faulted. Drain in-flight device work (charging the
    // wasted async time to the virtual clock) and restore the front.
    dev.synchronize(ctx.host_clock);
    const double wasted = ctx.host_clock.now() - attempt_t0;
    if (numeric) restore_front(front, snapshot_);
    ++faults;
    ++fault_count_;
    bool newly_quarantined = false;
    if (options_.quarantine_after_faults > 0 && !quarantined_ &&
        fault_count_ >= options_.quarantine_after_faults) {
      quarantined_ = true;
      newly_quarantined = true;
    }
    const bool will_retry = retriable && !injector.dead() &&
                            !quarantined_ &&
                            attempt + 1 < max_device_attempts;
    if (audited) {
      auto& metrics = obs::MetricsRegistry::global();
      metrics.increment(std::string("fault.detected.") +
                        fault_kind_name(observed));
      metrics.add("fault.wasted_seconds", wasted);
      metrics.increment(will_retry ? "fault.retries" : "fault.fallbacks");
      if (newly_quarantined) metrics.increment("fault.quarantines");
      obs::FaultEvent event;
      event.call = front.call();
      event.policy = static_cast<int>(choice);
      event.kind = static_cast<int>(observed);
      event.attempt = attempt;
      event.fell_back = !will_retry;
      event.quarantined = newly_quarantined;
      event.wasted_seconds = wasted;
      event.request_id = obs::current_request_id();
      obs::DecisionLog::global().record_fault(event);
    }
    if (!will_retry) break;
  }

  // On-device attempts exhausted: redo the whole front on the host P1
  // path. The virtual clock already carries the wasted GPU time; the CPU
  // redo now adds its full cost on top.
  FuOutcome out =
      executors_[exec_index(Policy::P1)]->execute(front, ctx);
  out.record.faults = faults;
  out.record.fell_back = true;
  out.record.t_total = ctx.host_clock.now() - t0;
  out.update_ready_at = std::max(out.update_ready_at, ctx.host_clock.now());
  return out;
}

PolicyTimer::PolicyTimer(ExecutorOptions options, ProcessorModel host,
                         Device::Options device_options, bool warm_pools) {
  device_options.numeric = false;
  device_ = std::make_unique<Device>(device_options);
  ctx_.host_model = host;
  ctx_.device = device_.get();
  ctx_.numeric = false;
  for (int p = 1; p <= 4; ++p) {
    executors_[static_cast<std::size_t>(p - 1)] =
        std::make_unique<PolicyExecutor>(policy_from_index(p), options);
  }
  if (warm_pools) warm_up(10000, 10000);
}

void PolicyTimer::warm_up(index_t m, index_t k) {
  const FrontBlocks shape = make_shape_blocks(m, k);
  for (int p = 1; p <= 4; ++p) {
    (void)time(policy_from_index(p), shape.call());
  }
}

FuCallRecord PolicyTimer::record(Policy policy, const FuCall& call) {
  // Drain in-flight transfers left by the previous measurement (e.g. the
  // copy-optimized P4's deferred panel copy) so each call is timed in
  // isolation.
  device_->synchronize(ctx_.host_clock);
  FrontBlocks blocks = make_shape_blocks(call);
  auto& exec =
      *executors_[static_cast<std::size_t>(static_cast<int>(policy) - 1)];
  const FuOutcome out = exec.execute(blocks, ctx_);
  return out.record;
}

double PolicyTimer::time(Policy policy, const FuCall& call) {
  return record(policy, call).t_total;
}

Policy PolicyTimer::best_policy(const FuCall& call) {
  Policy best = Policy::P1;
  double best_time = time(Policy::P1, call);
  for (Policy p : {Policy::P2, Policy::P3, Policy::P4}) {
    const double t = time(p, call);
    if (t < best_time) {
      best_time = t;
      best = p;
    }
  }
  return best;
}

double PolicyTimer::time_batched(const FuCall& call, int batch) {
  MFGPU_CHECK(batch >= 1, "time_batched: batch must be >= 1");
  const auto key = std::make_tuple(call.m, call.k, batch);
  if (const auto it = batched_cache_.find(key); it != batched_cache_.end()) {
    return it->second;
  }
  const std::size_t n = static_cast<std::size_t>(batch);
  std::vector<FrontBlocks> fronts;
  fronts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    fronts.push_back(make_shape_blocks(call.m, call.k,
                                       static_cast<index_t>(i)));
  }
  std::vector<char> skip(n, 0);
  std::vector<BatchFault> faulted;
  double share = 0.0;
  // Two passes: the first sizes the batch.* pool slots (high-water
  // allocation would otherwise charge the growth to this measurement),
  // the second measures steady state.
  for (int pass = 0; pass < 2; ++pass) {
    device_->synchronize(ctx_.host_clock);
    std::fill(skip.begin(), skip.end(), 0);
    faulted.clear();
    const double t0 = ctx_.host_clock.now();
    (void)run_batched_dispatch(std::span<FrontBlocks>(fronts), ctx_, skip,
                               faulted, batch_prods_);
    device_->synchronize(ctx_.host_clock);
    share = (ctx_.host_clock.now() - t0) / static_cast<double>(batch);
  }
  batched_cache_.emplace(key, share);
  return share;
}

}  // namespace mfgpu
