// The four workload-division policies of Table VI:
//   P1: potrf, trsm, syrk all on the CPU
//   P2: potrf, trsm on the CPU; syrk on the GPU
//   P3: potrf on the CPU; trsm, syrk on the GPU
//   P4: potrf, trsm, syrk all on the GPU (Fig. 9 panel algorithm)
// plus the batched execution class:
//   Batched: many small independent fronts aggregated into one GPU
//            dispatch (one launch + one transfer each way per batch),
//            amortizing the per-call overheads that dominate the paper's
//            ~97% small-call regime.
#pragma once

#include <array>
#include <string>

#include "multifrontal/fu_call.hpp"
#include "support/error.hpp"

namespace mfgpu {

enum class Policy : int { P1 = 1, P2 = 2, P3 = 3, P4 = 4, Batched = 5 };

/// The per-front policies a single F-U call can be executed under.
/// Policy::Batched is a dispatch-level class (a whole group of fronts per
/// call) and is deliberately not part of this sweep.
inline constexpr std::array<Policy, 4> kAllPolicies = {
    Policy::P1, Policy::P2, Policy::P3, Policy::P4};

/// Highest policy index in use (P1..P4 + Batched); sizes per-policy tables.
inline constexpr int kMaxPolicyIndex = 5;

const char* policy_name(Policy p);
Policy policy_from_index(int index);  ///< 1-based, matching the paper

/// Total asymptotic ops of one factor-update call: k^3/3 + m k^2 + m^2 k.
double fu_total_ops(index_t m, index_t k);

/// Build a FuCall with its flop count filled in from (m, k).
FuCall make_fu_call(index_t m, index_t k, index_t snode = -1,
                    index_t level = 0, index_t global_col = 0);

/// Bytes moved by the basic GPU implementation's copies, paper Eq. 2:
/// N_D(L1, L2) = k^2 + 2 m k words up+down, N_D(L2 L2^T) = m^2 words back.
/// (single-precision words on the device link).
double fu_copy_bytes_basic(index_t m, index_t k);

}  // namespace mfgpu
