// The four workload-division policies of Table VI:
//   P1: potrf, trsm, syrk all on the CPU
//   P2: potrf, trsm on the CPU; syrk on the GPU
//   P3: potrf on the CPU; trsm, syrk on the GPU
//   P4: potrf, trsm, syrk all on the GPU (Fig. 9 panel algorithm)
#pragma once

#include <array>
#include <string>

#include "support/error.hpp"

namespace mfgpu {

enum class Policy : int { P1 = 1, P2 = 2, P3 = 3, P4 = 4 };

inline constexpr std::array<Policy, 4> kAllPolicies = {
    Policy::P1, Policy::P2, Policy::P3, Policy::P4};

const char* policy_name(Policy p);
Policy policy_from_index(int index);  ///< 1-based, matching the paper

/// Total asymptotic ops of one factor-update call: k^3/3 + m k^2 + m^2 k.
double fu_total_ops(index_t m, index_t k);

/// Bytes moved by the basic GPU implementation's copies, paper Eq. 2:
/// N_D(L1, L2) = k^2 + 2 m k words up+down, N_D(L2 L2^T) = m^2 words back.
/// (single-precision words on the device link).
double fu_copy_bytes_basic(index_t m, index_t k);

}  // namespace mfgpu
