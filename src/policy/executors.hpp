// Factor-update executors for the four policies and the per-call
// dispatchers built on top of them.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "multifrontal/factor_update.hpp"
#include "policy/policy.hpp"

namespace mfgpu {

/// When the hybrid dispatchers detect and survive device faults.
enum class FaultTolerance {
  Auto,  ///< active exactly when the context device injects faults
  On,    ///< always validate GPU results and fall back on faults
  Off    ///< never: faults propagate to the caller (pre-robustness behavior)
};

struct ExecutorOptions {
  /// Async pinned-memory copies overlapped with computation (paper §V-A2).
  /// false = pageable synchronous copies — the Section IV "basic GPU
  /// implementation" and the ablation baseline.
  bool overlapped_copies = true;
  /// The multi-GPU-era P4 copy optimizations (paper §VI-C, Table VII last
  /// columns): the host waits only for the update-matrix transfer; the
  /// factored panel streams back while the host moves on.
  bool copy_optimized_p4 = false;
  /// 0 = p4_auto_panel_width(k).
  index_t p4_panel_width = 0;
  /// Fault tolerance of DispatchExecutor: validate GPU panels (finite
  /// check), retry a faulted F-U once on-device, then redo the front on the
  /// host P1 path. Auto keeps fault-free runs byte-identical to the
  /// untolerant dispatcher.
  FaultTolerance fault_tolerance = FaultTolerance::Auto;
  /// Circuit breaker: after this many detected device faults the dispatcher
  /// quarantines itself to CPU-only for the rest of the run (0 = never).
  /// Quarantine changes which fronts run in which precision, so runs that
  /// must stay bitwise-reproducible under work stealing leave this at 0.
  int quarantine_after_faults = 0;
};

/// Executes a fixed policy for every call.
class PolicyExecutor : public FuExecutor {
 public:
  explicit PolicyExecutor(Policy policy, ExecutorOptions options = {});

  FuOutcome execute(FrontBlocks front, FactorContext& ctx) override;
  void prepare(index_t max_m, index_t max_k, FactorContext& ctx) override;
  const char* name() const override { return name_.c_str(); }
  Policy policy() const noexcept { return policy_; }

 private:
  void ensure_prepared(FactorContext& ctx);
  FuOutcome run_p1(const FrontBlocks& f, FactorContext& ctx);
  FuOutcome run_p2(const FrontBlocks& f, FactorContext& ctx);
  FuOutcome run_p3(const FrontBlocks& f, FactorContext& ctx);
  FuOutcome run_p4(const FrontBlocks& f, FactorContext& ctx);
  /// m x m host staging for device-computed L2 L2^T products.
  MatrixView<double> product_view(index_t m, bool numeric);

  Policy policy_;
  ExecutorOptions options_;
  std::string name_;
  Matrix<double> product_scratch_;
  index_t prepared_m_ = -1;
  index_t prepared_k_ = -1;
  bool prepared_applied_ = false;
};

/// Chooses a policy per call from the FuCall descriptor — the hybrid
/// schemes plug in here. When the observability layer is active, every
/// execute() appends one obs::PolicyDecision (the call, executed policy,
/// predicted time, measured time) to the global decision log — the
/// profiler's policy-audit source.
///
/// execute_batch() is the aggregated small-front path (Policy::Batched):
/// the whole group runs as one potrf/trsm/syrk dispatch with one coalesced
/// transfer each way. Members that fault degrade individually — they are
/// restored and re-executed through the per-front path; the rest of the
/// batch is unaffected.
class DispatchExecutor : public FuExecutor {
 public:
  using Chooser = std::function<Policy(const FuCall& call)>;
  /// Optional: the dispatcher's own estimate of the chosen call's time in
  /// seconds (the ideal hybrid's dry-run oracle provides one; threshold and
  /// classifier strategies do not predict times and leave it unset).
  using TimePredictor =
      std::function<double(const FuCall& call, Policy chosen)>;

  DispatchExecutor(std::string name, Chooser chooser,
                   ExecutorOptions options = {});

  /// Attach a predicted-time source for the decision log.
  void set_predictor(TimePredictor predictor) {
    predictor_ = std::move(predictor);
  }

  FuOutcome execute(FrontBlocks front, FactorContext& ctx) override;
  std::vector<FuOutcome> execute_batch(std::span<FrontBlocks> fronts,
                                       FactorContext& ctx) override;
  void prepare(index_t max_m, index_t max_k, FactorContext& ctx) override;
  const char* name() const override { return name_.c_str(); }
  std::int64_t fault_count() const override { return fault_count_; }
  bool quarantined() const override { return quarantined_; }

 private:
  /// Fault-tolerant path: scoped injection, validate/retry/fallback.
  FuOutcome execute_tolerant(const FrontBlocks& front, FactorContext& ctx,
                             Policy choice);
  void snapshot_front(const FrontBlocks& front, std::vector<double>& buf);
  void restore_front(const FrontBlocks& front,
                     const std::vector<double>& buf) const;
  /// Per-front loop fallback for execute_batch (no device, quarantined,
  /// or fault tolerance explicitly off under an active injector).
  std::vector<FuOutcome> batch_singles(std::span<FrontBlocks> fronts,
                                       FactorContext& ctx);

  std::string name_;
  Chooser chooser_;
  TimePredictor predictor_;
  ExecutorOptions options_;
  std::array<std::unique_ptr<PolicyExecutor>, 4> executors_;
  std::int64_t fault_count_ = 0;
  bool quarantined_ = false;
  std::vector<double> snapshot_;  ///< pre-attempt copy of l1/l2/u
  /// Batched-path scratch: per-member m x m host product staging and
  /// pre-dispatch snapshots.
  std::vector<Matrix<double>> batch_prods_;
  std::vector<std::vector<double>> batch_snapshots_;
};

/// Dry-run timing oracle: simulates one F-U call of each policy on a
/// private device/clock and reports its cost. This is the "observed
/// timings" source for the ideal hybrid, the baseline thresholds, and the
/// classifier's training data.
class PolicyTimer {
 public:
  /// By default the pools are warmed with one maximal call per policy so
  /// reported times reflect the steady state of the paper's high-water
  /// allocation policy (a cold timer would charge every pool growth to the
  /// call that triggered it).
  explicit PolicyTimer(ExecutorOptions options = {},
                       ProcessorModel host = xeon5160_model(),
                       Device::Options device_options = {},
                       bool warm_pools = true);

  /// Run one dry call of every policy at (m, k) to size the pools.
  void warm_up(index_t m, index_t k);

  /// Host-visible duration (seconds) of one F-U call under `policy`.
  double time(Policy policy, const FuCall& call);
  /// Full component record of one simulated call.
  FuCallRecord record(Policy policy, const FuCall& call);
  /// The fastest per-front policy for the call — the paper's ideal hybrid
  /// P_IH (sweeps P1..P4; Policy::Batched is priced by time_batched).
  Policy best_policy(const FuCall& call);

  /// Per-front share (seconds) of one aggregated dispatch of `batch`
  /// identical fronts shaped like `call` — the dry-run price of a
  /// Policy::Batched decision, memoized by (m, k, batch). Runs the same
  /// batched dispatch code as DispatchExecutor::execute_batch on the dry
  /// device (warm pools), so the audit's regret gauges stay exact.
  double time_batched(const FuCall& call, int batch);

 private:
  FactorContext ctx_;
  std::unique_ptr<Device> device_;
  std::array<std::unique_ptr<PolicyExecutor>, 4> executors_;
  std::map<std::tuple<index_t, index_t, int>, double> batched_cache_;
  std::vector<Matrix<double>> batch_prods_;
};

}  // namespace mfgpu
