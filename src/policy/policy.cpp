#include "policy/policy.hpp"

#include "dense/blas.hpp"

namespace mfgpu {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::P1: return "P1";
    case Policy::P2: return "P2";
    case Policy::P3: return "P3";
    case Policy::P4: return "P4";
  }
  throw InvalidArgumentError("policy_name: invalid policy");
}

Policy policy_from_index(int index) {
  MFGPU_CHECK(index >= 1 && index <= 4, "policy_from_index: must be 1..4");
  return static_cast<Policy>(index);
}

double fu_total_ops(index_t m, index_t k) {
  return static_cast<double>(potrf_ops(k)) +
         static_cast<double>(trsm_ops(m, k)) +
         static_cast<double>(syrk_ops(m, k));
}

double fu_copy_bytes_basic(index_t m, index_t k) {
  const double words = static_cast<double>(k) * static_cast<double>(k) +
                       2.0 * static_cast<double>(m) * static_cast<double>(k) +
                       static_cast<double>(m) * static_cast<double>(m);
  return words * sizeof(float);
}

}  // namespace mfgpu
