#include "policy/policy.hpp"

#include "dense/blas.hpp"

namespace mfgpu {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::P1: return "P1";
    case Policy::P2: return "P2";
    case Policy::P3: return "P3";
    case Policy::P4: return "P4";
    case Policy::Batched: return "Batched";
  }
  throw InvalidArgumentError("policy_name: invalid policy");
}

Policy policy_from_index(int index) {
  MFGPU_CHECK(index >= 1 && index <= kMaxPolicyIndex,
              "policy_from_index: must be 1..5");
  return static_cast<Policy>(index);
}

FuCall make_fu_call(index_t m, index_t k, index_t snode, index_t level,
                    index_t global_col) {
  FuCall call;
  call.snode = snode;
  call.m = m;
  call.k = k;
  call.level = level;
  call.flops = fu_total_ops(m, k);
  call.global_col = global_col;
  return call;
}

double fu_total_ops(index_t m, index_t k) {
  return static_cast<double>(potrf_ops(k)) +
         static_cast<double>(trsm_ops(m, k)) +
         static_cast<double>(syrk_ops(m, k));
}

double fu_copy_bytes_basic(index_t m, index_t k) {
  const double words = static_cast<double>(k) * static_cast<double>(k) +
                       2.0 * static_cast<double>(m) * static_cast<double>(k) +
                       static_cast<double>(m) * static_cast<double>(m);
  return words * sizeof(float);
}

}  // namespace mfgpu
