#include "policy/baseline_hybrid.hpp"

#include <algorithm>
#include <cmath>

namespace mfgpu {

BaselineThresholds paper_thresholds() { return BaselineThresholds{}; }

namespace {

/// Find the op count at which `hi` first beats `lo` along the sweep, by
/// bisection on a log-spaced scan (the paper fits the rate-difference curve
/// and estimates its zero; a scan is equivalent at our resolution).
double find_transition(PolicyTimer& timer, Policy lo, Policy hi, double shape,
                       double ops_min, double ops_max) {
  double last_lo_wins = ops_min;
  double first_hi_wins = ops_max;
  const int steps = 160;
  for (int i = 0; i <= steps; ++i) {
    const double ops =
        ops_min * std::pow(ops_max / ops_min, static_cast<double>(i) / steps);
    // Given m = shape * k: ops = k^3 (1/3 + shape + shape^2)  =>  k.
    const double k_real =
        std::cbrt(ops / (1.0 / 3.0 + shape + shape * shape));
    const index_t k = std::max<index_t>(1, static_cast<index_t>(k_real));
    const index_t m = static_cast<index_t>(shape * static_cast<double>(k));
    const FuCall call{.m = m, .k = k};
    if (timer.time(hi, call) < timer.time(lo, call)) {
      first_hi_wins = std::min(first_hi_wins, ops);
    } else {
      last_lo_wins = std::max(last_lo_wins, ops);
    }
  }
  return std::sqrt(std::max(last_lo_wins, 1.0) * first_hi_wins);
}

}  // namespace

BaselineThresholds derive_thresholds(PolicyTimer& timer, double shape) {
  BaselineThresholds t;
  t.p1_to_p2 = find_transition(timer, Policy::P1, Policy::P2, shape, 1e3, 1e9);
  t.p2_to_p3 =
      find_transition(timer, Policy::P2, Policy::P3, shape, t.p1_to_p2, 1e10);
  t.p3_to_p4 =
      find_transition(timer, Policy::P3, Policy::P4, shape, t.p2_to_p3, 1e12);
  return t;
}

Policy baseline_choice(const BaselineThresholds& thresholds,
                       const FuCall& call) {
  const double ops = fu_total_ops(call.m, call.k);
  if (ops < thresholds.p1_to_p2) return Policy::P1;
  if (ops < thresholds.p2_to_p3) return Policy::P2;
  if (ops < thresholds.p3_to_p4) return Policy::P3;
  return Policy::P4;
}

DispatchExecutor make_baseline_hybrid(const BaselineThresholds& thresholds,
                                      ExecutorOptions options) {
  return DispatchExecutor(
      "P_BH",
      [thresholds](const FuCall& call) {
        return baseline_choice(thresholds, call);
      },
      options);
}

}  // namespace mfgpu
