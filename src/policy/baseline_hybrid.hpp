// The baseline hybrid P_BH (paper Section V-B1): choose the policy purely
// from the total op count of the call, using the transition points read off
// the policy flop-rate curves (Figs. 10-11). The paper's measured
// thresholds: P1 below 2e6 ops, P2 up to 1.5e7, P3 up to 9e10, P4 above.
#pragma once

#include "policy/executors.hpp"
#include "policy/policy.hpp"

namespace mfgpu {

struct BaselineThresholds {
  double p1_to_p2 = 2.0e6;
  double p2_to_p3 = 1.5e7;
  double p3_to_p4 = 9.0e10;
};

/// The paper's published thresholds.
BaselineThresholds paper_thresholds();

/// Re-derive the thresholds from this simulator's own policy timings by
/// sweeping op counts along a representative front shape (m = shape * k)
/// and locating the winner changes — the procedure the paper describes.
BaselineThresholds derive_thresholds(PolicyTimer& timer, double shape = 2.0);

Policy baseline_choice(const BaselineThresholds& thresholds,
                       const FuCall& call);

/// A DispatchExecutor wired to the baseline rule.
DispatchExecutor make_baseline_hybrid(const BaselineThresholds& thresholds,
                                      ExecutorOptions options = {});

}  // namespace mfgpu
