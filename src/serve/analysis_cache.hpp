// Pattern-keyed cache of shared symbolic analyses — the artifact that makes
// repeated-factorization serving cheap. Keyed by
// SparseSpd::pattern_fingerprint(); every matrix with the same sparsity
// pattern shares one PatternAnalysis (ordering + symbolic factorization),
// so same-pattern requests skip straight to the numeric refactor path.
//
// LRU eviction under a configurable byte budget (PatternAnalysis::
// approx_bytes). The most recently inserted entry is always retained, even
// when it alone exceeds the budget — a cache that cannot hold the working
// pattern would silently degrade every request to a full analyze.
//
// Thread-safe: all operations take one internal mutex; the returned
// artifacts are immutable shared_ptrs, safe to adopt from any session.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/solver.hpp"

namespace mfgpu::serve {

class AnalysisCache {
 public:
  explicit AnalysisCache(std::size_t budget_bytes);
  ~AnalysisCache();

  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  /// The cached analysis for this pattern fingerprint (bumped to most
  /// recently used), or nullptr on a miss. Counts a hit or a miss.
  std::shared_ptr<const PatternAnalysis> lookup(std::uint64_t fingerprint);

  /// Insert (or refresh) the artifact under its own fingerprint, then evict
  /// least-recently-used entries until the budget holds (the new entry is
  /// never evicted by its own insertion).
  void insert(std::shared_ptr<const PatternAnalysis> analysis);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::size_t bytes = 0;    ///< current footprint
    std::size_t entries = 0;  ///< current entry count

    double hit_rate() const noexcept {
      const std::int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };
  Stats stats() const;

  std::size_t budget_bytes() const noexcept { return budget_; }
  void clear();

 private:
  void evict_over_budget_locked();
  void publish_gauges_locked();

  const std::size_t budget_;
  mutable std::mutex mutex_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Stats stats_;
};

}  // namespace mfgpu::serve
