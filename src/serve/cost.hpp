// Deterministic simulated-cost accounting for the serving layer.
//
// The service's throughput metrics must be machine-independent (the bench
// regression gate compares them against checked-in baselines), so each
// request is priced in SIMULATED seconds, in the same spirit as the gpusim
// cost models: the analysis charge below, Solver::factor_time() for the
// numeric phase, and multifrontal's estimated_solve_seconds for the solves.
#pragma once

#include "sparse/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu::serve {

/// Simulated host seconds for the full symbolic analysis of `a` (ordering +
/// elimination tree + supernode formation + per-supernode row structure).
/// Modeled as cache-unfriendly combinatorial passes: the quotient-graph
/// minimum-degree elimination touches each adjacency entry many times with
/// irregular access, and the symbolic structure pass streams the factor
/// pattern once. This is the charge a warm AnalysisCache saves per request.
double estimated_analyze_seconds(const SparseSpd& a,
                                 const SymbolicFactor& sym);

/// Simulated seconds the service charges for one blocked batch solve of
/// `num_rhs` same-pattern right-hand sides on `solve_threads` solve
/// threads. With solve_threads <= 1 this is exactly multifrontal's
/// estimated_solve_seconds(sym, num_rhs) (the serial blocked sweep);
/// more threads price the level-scheduled parallel sweep
/// (multifrontal/parallel_solve.hpp's deterministic per-level bound).
double estimated_batch_solve_seconds(const SymbolicFactor& sym,
                                     index_t num_rhs, int solve_threads);

}  // namespace mfgpu::serve
