#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <thread>
#include <utility>

#include "multifrontal/solve.hpp"
#include "obs/obs.hpp"
#include "obs/request_context.hpp"
#include "sched/bounded_queue.hpp"
#include "serve/cost.hpp"

namespace mfgpu::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Request {
  std::shared_ptr<const SparseSpd> matrix;
  std::vector<double> rhs;
  std::uint64_t pattern_fp = 0;
  std::uint64_t values_fp = 0;
  /// Effective batching and cluster configs (request override or the
  /// service default), resolved at submit; part of the coalescing key.
  BatchingOptions batching;
  ClusterOptions cluster;
  Clock::time_point enqueued{};
  Clock::time_point deadline{};
  bool has_deadline = false;
  int retries_left = 0;
  int attempts = 0;
  bool collect_trace = false;
  bool explain_schedule = false;
  /// Causal identity carried through sessions, Solver phases, executors,
  /// and fault injection (see obs/request_context.hpp).
  obs::RequestContext ctx;
  std::promise<SolveResult> promise;

  bool expired(Clock::time_point now) const noexcept {
    return has_deadline && now > deadline;
  }
};

void fulfill(Request& request, SolveResult result) {
  result.request_id = request.ctx.request_id;
  request.promise.set_value(std::move(result));
}

SolveResult make_status_result(RequestStatus status, std::string error = {}) {
  SolveResult result;
  result.status = status;
  result.error = std::move(error);
  return result;
}

std::uint8_t clamped_attempts(int attempts) noexcept {
  return static_cast<std::uint8_t>(std::clamp(attempts, 1, 255));
}

}  // namespace

const char* status_name(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Cancelled: return "cancelled";
    case RequestStatus::DeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::Failed: return "failed";
  }
  return "unknown";
}

struct SolverService::Impl {
  explicit Impl(ServeOptions options_in)
      : options(std::move(options_in)),
        cache(options.analysis_cache_bytes),
        queue(options.queue_capacity),
        slo(options.slo),
        alerts(options.alert_rules.empty()
                   ? obs::default_serve_alert_rules(options.queue_capacity)
                   : options.alert_rules) {
    MFGPU_CHECK(options.max_batch_rhs >= 1,
                "SolverService: max_batch_rhs must be >= 1");
    const int sessions = options.session_workers.empty()
                             ? options.num_sessions
                             : static_cast<int>(options.session_workers.size());
    MFGPU_CHECK(sessions >= 1, "SolverService: need at least one session");
    queue.set_paused(options.start_paused);
    threads.reserve(static_cast<std::size_t>(sessions));
    for (int id = 0; id < sessions; ++id) {
      threads.emplace_back([this, id] { run_session(id); });
    }
    if (options.health_sample_seconds > 0.0) {
      monitor = std::thread([this] { run_monitor(); });
    }
  }

  /// Per-session solver state: one Solver handle reused as long as the
  /// traffic stays on its pattern.
  struct Session {
    std::unique_ptr<Solver> solver;
    std::uint64_t pattern_fp = 0;
    std::uint64_t values_fp = 0;
    /// Batching and cluster configs the current solver was built with; a
    /// request with a different effective config forces a rebuild.
    BatchingOptions batching;
    ClusterOptions cluster;
  };

  SolverOptions session_solver_options(int id, const BatchingOptions& batching,
                                       const ClusterOptions& cluster) const {
    SolverOptions solver_options = options.solver;
    solver_options.batching = batching;
    solver_options.cluster = cluster;
    if (!options.session_workers.empty()) {
      solver_options.workers = {
          options.session_workers[static_cast<std::size_t>(id)]};
    }
    return solver_options;
  }

  void run_session(int id);
  void process_batch(std::vector<Request>& batch, Session& session, int id);
  void finish_expired(Request& request);
  void cancel(Request& request);

  /// One RequestSample per finished request. Always recorded (the health
  /// monitor works with or without obs recording), so the steady-clock
  /// latency is measured here, not derived from span timestamps.
  void record_slo_sample(const Request& request, RequestStatus status,
                         bool cache_hit) {
    obs::RequestSample sample;
    sample.end_ns = obs::SloAggregator::now_ns();
    sample.latency_seconds = static_cast<float>(
        std::chrono::duration<double>(Clock::now() - request.enqueued).count());
    sample.queue_depth = static_cast<float>(queue.size());
    sample.status = static_cast<obs::SampleStatus>(status);
    sample.cache_hit = cache_hit;
    sample.attempts = clamped_attempts(std::max(1, request.attempts));
    slo.record(sample);
  }

  void run_monitor();
  obs::WindowStats sample_health();

  ServeOptions options;
  AnalysisCache cache;
  BoundedQueue<Request> queue;
  std::vector<std::thread> threads;

  obs::SloAggregator slo;
  obs::AlertEngine alerts;

  mutable std::mutex health_mutex;
  obs::WindowStats last_health;

  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  std::thread monitor;

  mutable std::mutex stats_mutex;
  ServiceStats stats;

  std::mutex shutdown_mutex;
  bool closed = false;
};

void SolverService::Impl::finish_expired(Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.deadline_exceeded;
  }
  obs::MetricsRegistry::global().increment("serve.requests.deadline_exceeded");
  const std::int64_t now = obs::TraceSession::global().now_ns();
  obs::record_span("request", "deadline_exceeded", now, now,
                   request.ctx.request_id, request.ctx.root_span);
  record_slo_sample(request, RequestStatus::DeadlineExceeded, false);
  fulfill(request, make_status_result(RequestStatus::DeadlineExceeded));
}

void SolverService::Impl::cancel(Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.cancelled;
  }
  obs::MetricsRegistry::global().increment("serve.requests.cancelled");
  const std::int64_t now = obs::TraceSession::global().now_ns();
  obs::record_span("request", "cancelled", now, now, request.ctx.request_id,
                   request.ctx.root_span);
  record_slo_sample(request, RequestStatus::Cancelled, false);
  fulfill(request, make_status_result(RequestStatus::Cancelled));
}

void SolverService::Impl::run_session(int id) {
  Session session;
  bool named_lane = false;
  while (std::optional<Request> request = queue.pop()) {
    if (!named_lane && obs::enabled()) {
      obs::TraceSession::global().set_current_thread_name(
          "serve session " + std::to_string(id));
      named_lane = true;
    }
    obs::MetricsRegistry::global().gauge_set(
        "serve.queue.depth", static_cast<double>(queue.size()));
    if (request->expired(Clock::now())) {
      finish_expired(*request);
      continue;
    }
    // Coalesce queued same-(pattern, values) requests into one blocked
    // multi-RHS pass.
    std::vector<Request> batch;
    batch.push_back(std::move(*request));
    if (options.max_batch_rhs > 1) {
      const std::uint64_t pattern_fp = batch.front().pattern_fp;
      const std::uint64_t values_fp = batch.front().values_fp;
      const BatchingOptions batching = batch.front().batching;
      const ClusterOptions cluster = batch.front().cluster;
      std::vector<Request> extracted = queue.extract_if(
          [&](const Request& r) {
            return r.pattern_fp == pattern_fp && r.values_fp == values_fp &&
                   r.batching == batching && r.cluster == cluster;
          },
          static_cast<std::size_t>(options.max_batch_rhs) - 1);
      const Clock::time_point now = Clock::now();
      for (Request& r : extracted) {
        if (r.expired(now)) {
          finish_expired(r);
        } else {
          batch.push_back(std::move(r));
        }
      }
    }
    process_batch(batch, session, id);
  }
}

void SolverService::Impl::process_batch(std::vector<Request>& batch,
                                        Session& session, int id) {
  for (Request& request : batch) ++request.attempts;
  Request& head = batch.front();
  const index_t n = head.matrix->n();
  const index_t k = static_cast<index_t>(batch.size());

  // Bind the head request's context to this session thread: every span the
  // batch opens below — Solver phases, pool-worker F-U tasks (re-bound by
  // factorize_parallel), dispatch decisions, injected faults — is stamped
  // with its request id and parent-linked into its causal tree. Batched
  // siblings share the head's execution tree; their own identity lives in
  // their queue_wait/complete markers.
  obs::RequestScope request_scope(&head.ctx);
  obs::TraceSession& trace = obs::TraceSession::global();
  const bool collect =
      obs::enabled() && std::any_of(batch.begin(), batch.end(),
                                    [](const Request& r) {
                                      return r.collect_trace;
                                    });
  // Mark this thread's buffer position BEFORE recording anything for the
  // batch: the per-request trace dump is everything the session thread
  // records from here to fulfillment (own-buffer reads are race-free).
  const std::size_t trace_mark = trace.current_thread_event_count();
  {
    // Queue wait as a real interval per request: admission -> pickup.
    const std::int64_t now = trace.now_ns();
    for (const Request& r : batch) {
      obs::record_span("request", "queue_wait", r.ctx.admitted_ns, now,
                       r.ctx.request_id, r.ctx.root_span,
                       {{"attempt", r.attempts}});
    }
  }

  bool analysis_reused = false;
  bool factor_reused = false;
  double analyze_sim = 0.0;
  double factor_sim = 0.0;
  double solve_sim = 0.0;
  Matrix<double> solution;
  bool exec_failed = false;
  std::string exec_error;
  {
    // The batch span closes at this block's end — BEFORE results are
    // fulfilled — so a collect_trace dump taken afterwards contains the
    // complete execution tree, not a still-open span.
    obs::ScopedSpan span("serve", "request_batch");
    span.set_arg(0, "n", n);
    span.set_arg(1, "batch_rhs", k);
    span.set_arg(2, "request",
                 static_cast<std::int64_t>(head.ctx.request_id));
    try {
      if (session.solver != nullptr && session.pattern_fp == head.pattern_fp &&
          session.batching == head.batching &&
          session.cluster == head.cluster) {
        analysis_reused = true;
        if (session.values_fp == head.values_fp) {
          factor_reused = true;
        } else {
          obs::ScopedSpan refactor_span("serve", "refactor");
          session.solver->refactor(*head.matrix);
          factor_sim = session.solver->factor_time();
        }
      } else {
        std::shared_ptr<const PatternAnalysis> shared =
            cache.lookup(head.pattern_fp);
        if (shared != nullptr) {
          analysis_reused = true;
          obs::ScopedSpan adopt_span("serve", "adopt_cached_analysis");
          session.solver = std::make_unique<Solver>(Solver::analyze(
              *head.matrix, std::move(shared),
              session_solver_options(id, head.batching, head.cluster)));
        } else {
          obs::ScopedSpan analyze_span("serve", "analyze_miss");
          session.solver = std::make_unique<Solver>(Solver::analyze(
              *head.matrix,
              session_solver_options(id, head.batching, head.cluster)));
          cache.insert(session.solver->share_analysis());
          analyze_sim = estimated_analyze_seconds(
              *head.matrix, session.solver->analysis().symbolic);
        }
        {
          obs::ScopedSpan factor_span("serve", "factor");
          session.solver->factor();
        }
        factor_sim = session.solver->factor_time();
        session.pattern_fp = head.pattern_fp;
        session.batching = head.batching;
        session.cluster = head.cluster;
      }
      session.values_fp = head.values_fp;

      // One blocked pass over all coalesced right-hand sides. The
      // per-column numeric path is the same refined solve a direct
      // Solver::solve runs, so batched results stay bitwise identical to
      // unbatched ones.
      Matrix<double> block(n, k);
      for (index_t j = 0; j < k; ++j) {
        const std::vector<double>& rhs =
            batch[static_cast<std::size_t>(j)].rhs;
        for (index_t i = 0; i < n; ++i) {
          block(i, j) = rhs[static_cast<std::size_t>(i)];
        }
      }
      {
        obs::ScopedSpan solve_span("serve", "batch_solve");
        solve_span.set_arg(0, "batch_rhs", k);
        solution = session.solver->solve(block);
      }
      solve_sim =
          estimated_batch_solve_seconds(session.solver->analysis().symbolic, k,
                                        options.solver.solve_threads);
    } catch (const Error& e) {
      // The session's solver may be mid-phase — drop it so the next request
      // rebuilds from a clean state (the shared cache entry, if any, is
      // unaffected: PatternAnalysis is immutable).
      exec_failed = true;
      exec_error = e.what();
      session.solver.reset();
      session.pattern_fp = 0;
      session.values_fp = 0;
    }
  }

  auto& metrics = obs::MetricsRegistry::global();
  if (!exec_failed) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.batches;
      analysis_reused ? ++stats.analysis_reuses : ++stats.analyses;
      factor_reused ? ++stats.factor_reuses : ++stats.factorizations;
      stats.completed += k;
      stats.sim_analyze_seconds += analyze_sim;
      stats.sim_factor_seconds += factor_sim;
      stats.sim_solve_seconds += solve_sim;
    }
    metrics.increment("serve.batches");
    metrics.observe("serve.batch.rhs", static_cast<double>(k));
    metrics.add("serve.requests.completed", static_cast<double>(k));
    metrics.increment(analysis_reused ? "serve.analysis.reused"
                                      : "serve.analysis.full");
    metrics.increment(factor_reused ? "serve.factor.reused"
                                    : "serve.factor.runs");
    metrics.add("serve.sim.analyze_seconds", analyze_sim);
    metrics.add("serve.sim.factor_seconds", factor_sim);
    metrics.add("serve.sim.solve_seconds", solve_sim);
    // Shard-mode traffic of the factorization behind this batch (nothing
    // new is emitted when the factor was reused — no cluster run happened).
    if (!factor_reused && session.solver != nullptr &&
        session.solver->cluster_stats().has_value()) {
      const ClusterStats& cluster = *session.solver->cluster_stats();
      metrics.increment("serve.cluster.factor_runs");
      metrics.gauge_set("serve.cluster.nodes",
                        static_cast<double>(cluster.num_nodes));
      metrics.add("serve.cluster.messages",
                  static_cast<double>(cluster.messages));
      metrics.add("serve.cluster.bytes_on_wire", cluster.bytes_on_wire);
      metrics.add("serve.cluster.makespan_seconds", cluster.makespan);
    }

    const double sim_share = (analyze_sim + factor_sim + solve_sim) /
                             static_cast<double>(k);
    // Critical-path digest of the factorization behind this batch's factor,
    // computed once and shared by every requester that asked for it.
    obs::ScheduleSummary schedule_summary;
    bool want_schedule = false;
    for (const Request& request : batch) {
      want_schedule = want_schedule || request.explain_schedule;
    }
    if (want_schedule && session.solver != nullptr &&
        session.solver->schedule_recorded()) {
      const obs::ScheduleRecord& schedule = session.solver->schedule();
      schedule_summary = obs::summarize(obs::analyze_critical_path(schedule),
                                        static_cast<int>(schedule.lanes.size()));
    }
    const Clock::time_point now = Clock::now();
    const std::int64_t now_ns = trace.now_ns();
    for (const Request& request : batch) {
      obs::record_span("request", "complete", now_ns, now_ns,
                       request.ctx.request_id, request.ctx.root_span,
                       {{"attempts", request.attempts}});
    }
    // Dump AFTER the completion markers so they are part of the slice.
    std::vector<obs::SpanEvent> dumped;
    if (collect) dumped = trace.current_thread_events_since(trace_mark);

    for (index_t j = 0; j < k; ++j) {
      Request& request = batch[static_cast<std::size_t>(j)];
      SolveResult result;
      result.status = RequestStatus::Ok;
      result.x.resize(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i) {
        result.x[static_cast<std::size_t>(i)] = solution(i, j);
      }
      result.analysis_cache_hit = analysis_reused;
      result.factor_reused = factor_reused;
      result.batch_size = static_cast<int>(k);
      result.simulated_seconds = sim_share;
      result.attempts = request.attempts;
      if (request.explain_schedule) result.schedule = schedule_summary;
      if (request.collect_trace) {
        result.trace.reserve(dumped.size());
        for (const obs::SpanEvent& ev : dumped) {
          result.trace.push_back(RequestTraceSpan{
              ev.category, ev.name, ev.start_ns, ev.end_ns, ev.span_id,
              ev.parent_span});
        }
      }
      metrics.observe(
          "serve.request.latency_seconds",
          std::chrono::duration<double>(now - request.enqueued).count());
      record_slo_sample(request, RequestStatus::Ok, analysis_reused);
      fulfill(request, std::move(result));
    }
    return;
  }

  // Execution failed. Requests with retry budget left go back to the queue
  // for another attempt (possibly on a different session, against the
  // rebuilt state); the rest fail. try_push never blocks a session thread
  // and fails once the queue is closed or full, in which case the request
  // fails like one with no budget.
  std::int64_t failed = 0;
  std::int64_t retried = 0;
  std::int64_t exhausted = 0;
  std::vector<std::size_t> failing;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.retries_left > 0) {
      --request.retries_left;
      // Marker first: try_push moves the request out on success.
      const std::int64_t now_ns = trace.now_ns();
      obs::record_span("request", "retry_enqueue", now_ns, now_ns,
                       request.ctx.request_id, request.ctx.root_span,
                       {{"attempt", request.attempts}});
      if (queue.try_push(request)) {
        ++retried;
        continue;
      }
    } else if (request.attempts > 1) {
      ++exhausted;
    }
    ++failed;
    failing.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.failed += failed;
    stats.retries += retried;
    stats.retry_exhausted += exhausted;
  }
  if (failed > 0) {
    metrics.add("serve.requests.failed", static_cast<double>(failed));
  }
  if (retried > 0) {
    metrics.add("serve.retry.scheduled", static_cast<double>(retried));
  }
  if (exhausted > 0) {
    metrics.add("serve.retry.exhausted", static_cast<double>(exhausted));
  }
  // The failure-path dump: queue waits, the partial execution tree, and
  // the retry markers recorded above.
  std::vector<obs::SpanEvent> dumped;
  if (collect) dumped = trace.current_thread_events_since(trace_mark);
  // Fulfill only after the stats/metrics are published: a caller blocked
  // on the future must observe consistent counters once it wakes.
  for (std::size_t i : failing) {
    Request& request = batch[i];
    SolveResult failure =
        make_status_result(RequestStatus::Failed, exec_error);
    failure.attempts = request.attempts;
    if (request.collect_trace) {
      failure.trace.reserve(dumped.size());
      for (const obs::SpanEvent& ev : dumped) {
        failure.trace.push_back(RequestTraceSpan{ev.category, ev.name,
                                                 ev.start_ns, ev.end_ns,
                                                 ev.span_id, ev.parent_span});
      }
    }
    record_slo_sample(request, RequestStatus::Failed, false);
    fulfill(request, std::move(failure));
  }
}

void SolverService::Impl::run_monitor() {
  std::unique_lock<std::mutex> lock(monitor_mutex);
  const auto period = std::chrono::duration<double>(
      std::max(1e-3, options.health_sample_seconds));
  while (!monitor_stop) {
    if (monitor_cv.wait_for(lock, period, [this] { return monitor_stop; })) {
      break;
    }
    lock.unlock();
    sample_health();
    lock.lock();
  }
}

obs::WindowStats SolverService::Impl::sample_health() {
  obs::WindowStats window = slo.window();
  obs::SloAggregator::publish(window);
  alerts.evaluate(window);
  const std::vector<std::string> firing = alerts.firing();
  {
    std::lock_guard<std::mutex> lock(health_mutex);
    last_health = window;
  }
  if (!options.health_json_path.empty()) {
    std::ofstream out(options.health_json_path, std::ios::app);
    if (out) obs::write_health_sample_json(out, window, firing);
  }
  if (!options.prometheus_path.empty()) {
    std::ofstream out(options.prometheus_path, std::ios::trunc);
    if (out) obs::write_prometheus(out, window);
  }
  return window;
}

SolverService::SolverService(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolverService::~SolverService() { shutdown(true); }

std::future<SolveResult> SolverService::submit(
    std::shared_ptr<const SparseSpd> a, std::vector<double> rhs,
    const RequestOptions& options) {
  if (a == nullptr) {
    throw InvalidArgumentError("SolverService::submit: null matrix");
  }
  if (static_cast<index_t>(rhs.size()) != a->n()) {
    throw InvalidArgumentError(
        "SolverService::submit: rhs has " + std::to_string(rhs.size()) +
        " entries, matrix dimension is " + std::to_string(a->n()));
  }
  auto& metrics = obs::MetricsRegistry::global();
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->stats.submitted;
  }
  metrics.increment("serve.requests.submitted");

  Request request;
  request.matrix = std::move(a);
  request.pattern_fp = request.matrix->pattern_fingerprint();
  request.values_fp = request.matrix->values_fingerprint();
  request.rhs = std::move(rhs);
  request.batching = options.batching.value_or(impl_->options.solver.batching);
  request.cluster = options.cluster.value_or(impl_->options.solver.cluster);
  request.enqueued = Clock::now();
  request.retries_left = std::max(0, options.max_retries);
  request.collect_trace = options.collect_trace;
  request.explain_schedule = options.explain_schedule;
  if (options.deadline_seconds > 0.0) {
    request.has_deadline = true;
    request.deadline =
        request.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options.deadline_seconds));
  }

  // Mint the request's causal identity at admission. The id is allocated
  // unconditionally (it also keys SLO samples and SolveResult::request_id);
  // the admission span only lands in the trace while recording is on.
  obs::TraceSession& trace = obs::TraceSession::global();
  request.ctx.request_id = obs::next_request_id();
  request.ctx.tenant = options.tenant;
  request.ctx.priority = options.priority;
  request.ctx.admitted_ns = trace.now_ns();
  if (request.has_deadline) {
    request.ctx.deadline_ns =
        request.ctx.admitted_ns +
        static_cast<std::int64_t>(options.deadline_seconds * 1e9);
  }
  request.ctx.root_span = obs::record_span(
      "request", "admit", request.ctx.admitted_ns, request.ctx.admitted_ns,
      request.ctx.request_id, 0,
      {{"tenant", static_cast<std::int64_t>(options.tenant)},
       {"priority", options.priority},
       {"max_retries", request.retries_left}});

  std::future<SolveResult> future = request.promise.get_future();

  const bool accepted = impl_->options.admission == AdmissionPolicy::Block
                            ? impl_->queue.push(request)
                            : impl_->queue.try_push(request);
  if (!accepted) {
    // Blocked pushes only fail once the queue is closed; try_push also
    // fails on a full queue. Either way the request was never admitted.
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->stats.rejected;
    }
    metrics.increment("serve.requests.rejected");
    const std::int64_t now = trace.now_ns();
    obs::record_span("request", "rejected", now, now, request.ctx.request_id,
                     request.ctx.root_span);
    impl_->record_slo_sample(request, RequestStatus::Rejected, false);
    fulfill(request, make_status_result(RequestStatus::Rejected));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->stats.admitted;
  }
  metrics.increment("serve.requests.admitted");
  const double depth = static_cast<double>(impl_->queue.size());
  metrics.gauge_set("serve.queue.depth", depth);
  metrics.observe("serve.queue.depth_samples", depth);
  return future;
}

void SolverService::start() { impl_->queue.set_paused(false); }

void SolverService::shutdown(bool drain_queued) {
  std::lock_guard<std::mutex> lock(impl_->shutdown_mutex);
  if (!impl_->closed) {
    impl_->closed = true;
    if (!drain_queued) {
      // Close first so sessions stop pulling new work the moment their
      // current batch finishes, then cancel whatever is still queued.
      impl_->queue.close();
      std::vector<Request> dropped = impl_->queue.drain_now();
      for (Request& request : dropped) impl_->cancel(request);
    } else {
      impl_->queue.close();  // queued work remains poppable: full drain
    }
    for (std::thread& thread : impl_->threads) thread.join();
    impl_->threads.clear();
    if (impl_->monitor.joinable()) {
      {
        std::lock_guard<std::mutex> monitor_lock(impl_->monitor_mutex);
        impl_->monitor_stop = true;
      }
      impl_->monitor_cv.notify_all();
      impl_->monitor.join();
    }
    // Final health sample (captures the drained tail) and exporter flush:
    // traces/metrics for work served during shutdown reach the configured
    // MFGPU_TRACE/MFGPU_METRICS files even when this service outlives the
    // scope that would export them, or the process exits without
    // unwinding.
    impl_->sample_health();
    obs::flush_exports();
  }
}

obs::WindowStats SolverService::sample_health() {
  return impl_->sample_health();
}

obs::WindowStats SolverService::health() const {
  std::lock_guard<std::mutex> lock(impl_->health_mutex);
  return impl_->last_health;
}

std::vector<obs::AlertTransition> SolverService::alert_history() const {
  return impl_->alerts.history();
}

std::vector<std::string> SolverService::firing_alerts() const {
  return impl_->alerts.firing();
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

const AnalysisCache::Stats SolverService::cache_stats() const {
  return impl_->cache.stats();
}

std::size_t SolverService::queue_depth() const { return impl_->queue.size(); }

int SolverService::num_sessions() const noexcept {
  return impl_->options.session_workers.empty()
             ? impl_->options.num_sessions
             : static_cast<int>(impl_->options.session_workers.size());
}

}  // namespace mfgpu::serve
