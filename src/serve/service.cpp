#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "multifrontal/solve.hpp"
#include "obs/obs.hpp"
#include "sched/bounded_queue.hpp"
#include "serve/cost.hpp"

namespace mfgpu::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Request {
  std::shared_ptr<const SparseSpd> matrix;
  std::vector<double> rhs;
  std::uint64_t pattern_fp = 0;
  std::uint64_t values_fp = 0;
  Clock::time_point enqueued{};
  Clock::time_point deadline{};
  bool has_deadline = false;
  int retries_left = 0;
  int attempts = 0;
  std::promise<SolveResult> promise;

  bool expired(Clock::time_point now) const noexcept {
    return has_deadline && now > deadline;
  }
};

void fulfill(Request& request, SolveResult result) {
  request.promise.set_value(std::move(result));
}

SolveResult make_status_result(RequestStatus status, std::string error = {}) {
  SolveResult result;
  result.status = status;
  result.error = std::move(error);
  return result;
}

}  // namespace

const char* status_name(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Cancelled: return "cancelled";
    case RequestStatus::DeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::Failed: return "failed";
  }
  return "unknown";
}

struct SolverService::Impl {
  explicit Impl(ServeOptions options_in)
      : options(std::move(options_in)),
        cache(options.analysis_cache_bytes),
        queue(options.queue_capacity) {
    MFGPU_CHECK(options.max_batch_rhs >= 1,
                "SolverService: max_batch_rhs must be >= 1");
    const int sessions = options.session_workers.empty()
                             ? options.num_sessions
                             : static_cast<int>(options.session_workers.size());
    MFGPU_CHECK(sessions >= 1, "SolverService: need at least one session");
    queue.set_paused(options.start_paused);
    threads.reserve(static_cast<std::size_t>(sessions));
    for (int id = 0; id < sessions; ++id) {
      threads.emplace_back([this, id] { run_session(id); });
    }
  }

  /// Per-session solver state: one Solver handle reused as long as the
  /// traffic stays on its pattern.
  struct Session {
    std::unique_ptr<Solver> solver;
    std::uint64_t pattern_fp = 0;
    std::uint64_t values_fp = 0;
  };

  SolverOptions session_solver_options(int id) const {
    SolverOptions solver_options = options.solver;
    if (!options.session_workers.empty()) {
      solver_options.workers = {
          options.session_workers[static_cast<std::size_t>(id)]};
    }
    return solver_options;
  }

  void run_session(int id);
  void process_batch(std::vector<Request>& batch, Session& session, int id);
  void finish_expired(Request& request);
  void cancel(Request& request);

  ServeOptions options;
  AnalysisCache cache;
  BoundedQueue<Request> queue;
  std::vector<std::thread> threads;

  mutable std::mutex stats_mutex;
  ServiceStats stats;

  std::mutex shutdown_mutex;
  bool closed = false;
};

void SolverService::Impl::finish_expired(Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.deadline_exceeded;
  }
  obs::MetricsRegistry::global().increment("serve.requests.deadline_exceeded");
  fulfill(request, make_status_result(RequestStatus::DeadlineExceeded));
}

void SolverService::Impl::cancel(Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.cancelled;
  }
  obs::MetricsRegistry::global().increment("serve.requests.cancelled");
  fulfill(request, make_status_result(RequestStatus::Cancelled));
}

void SolverService::Impl::run_session(int id) {
  Session session;
  bool named_lane = false;
  while (std::optional<Request> request = queue.pop()) {
    if (!named_lane && obs::enabled()) {
      obs::TraceSession::global().set_current_thread_name(
          "serve session " + std::to_string(id));
      named_lane = true;
    }
    obs::MetricsRegistry::global().gauge_set(
        "serve.queue.depth", static_cast<double>(queue.size()));
    if (request->expired(Clock::now())) {
      finish_expired(*request);
      continue;
    }
    // Coalesce queued same-(pattern, values) requests into one blocked
    // multi-RHS pass.
    std::vector<Request> batch;
    batch.push_back(std::move(*request));
    if (options.max_batch_rhs > 1) {
      const std::uint64_t pattern_fp = batch.front().pattern_fp;
      const std::uint64_t values_fp = batch.front().values_fp;
      std::vector<Request> extracted = queue.extract_if(
          [&](const Request& r) {
            return r.pattern_fp == pattern_fp && r.values_fp == values_fp;
          },
          static_cast<std::size_t>(options.max_batch_rhs) - 1);
      const Clock::time_point now = Clock::now();
      for (Request& r : extracted) {
        if (r.expired(now)) {
          finish_expired(r);
        } else {
          batch.push_back(std::move(r));
        }
      }
    }
    process_batch(batch, session, id);
  }
}

void SolverService::Impl::process_batch(std::vector<Request>& batch,
                                        Session& session, int id) {
  for (Request& request : batch) ++request.attempts;
  const Request& head = batch.front();
  const index_t n = head.matrix->n();
  const index_t k = static_cast<index_t>(batch.size());

  obs::ScopedSpan span("serve", "request_batch");
  span.set_arg(0, "n", n);
  span.set_arg(1, "batch_rhs", k);

  bool analysis_reused = false;
  bool factor_reused = false;
  double analyze_sim = 0.0;
  double factor_sim = 0.0;
  try {
    if (session.solver != nullptr && session.pattern_fp == head.pattern_fp) {
      analysis_reused = true;
      if (session.values_fp == head.values_fp) {
        factor_reused = true;
      } else {
        obs::ScopedSpan refactor_span("serve", "refactor");
        session.solver->refactor(*head.matrix);
        factor_sim = session.solver->factor_time();
      }
    } else {
      std::shared_ptr<const PatternAnalysis> shared =
          cache.lookup(head.pattern_fp);
      if (shared != nullptr) {
        analysis_reused = true;
        obs::ScopedSpan adopt_span("serve", "adopt_cached_analysis");
        session.solver = std::make_unique<Solver>(Solver::analyze(
            *head.matrix, std::move(shared), session_solver_options(id)));
      } else {
        obs::ScopedSpan analyze_span("serve", "analyze_miss");
        session.solver = std::make_unique<Solver>(
            Solver::analyze(*head.matrix, session_solver_options(id)));
        cache.insert(session.solver->share_analysis());
        analyze_sim = estimated_analyze_seconds(
            *head.matrix, session.solver->analysis().symbolic);
      }
      {
        obs::ScopedSpan factor_span("serve", "factor");
        session.solver->factor();
      }
      factor_sim = session.solver->factor_time();
      session.pattern_fp = head.pattern_fp;
    }
    session.values_fp = head.values_fp;

    // One blocked pass over all coalesced right-hand sides. The per-column
    // numeric path is the same refined solve a direct Solver::solve runs,
    // so batched results stay bitwise identical to unbatched ones.
    Matrix<double> block(n, k);
    for (index_t j = 0; j < k; ++j) {
      const std::vector<double>& rhs =
          batch[static_cast<std::size_t>(j)].rhs;
      for (index_t i = 0; i < n; ++i) {
        block(i, j) = rhs[static_cast<std::size_t>(i)];
      }
    }
    Matrix<double> solution;
    {
      obs::ScopedSpan solve_span("serve", "batch_solve");
      solve_span.set_arg(0, "batch_rhs", k);
      solution = session.solver->solve(block);
    }
    const double solve_sim =
        estimated_solve_seconds(session.solver->analysis().symbolic, k);

    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.batches;
      analysis_reused ? ++stats.analysis_reuses : ++stats.analyses;
      factor_reused ? ++stats.factor_reuses : ++stats.factorizations;
      stats.completed += k;
      stats.sim_analyze_seconds += analyze_sim;
      stats.sim_factor_seconds += factor_sim;
      stats.sim_solve_seconds += solve_sim;
    }
    auto& metrics = obs::MetricsRegistry::global();
    metrics.increment("serve.batches");
    metrics.observe("serve.batch.rhs", static_cast<double>(k));
    metrics.add("serve.requests.completed", static_cast<double>(k));
    metrics.increment(analysis_reused ? "serve.analysis.reused"
                                      : "serve.analysis.full");
    metrics.increment(factor_reused ? "serve.factor.reused"
                                    : "serve.factor.runs");
    metrics.add("serve.sim.analyze_seconds", analyze_sim);
    metrics.add("serve.sim.factor_seconds", factor_sim);
    metrics.add("serve.sim.solve_seconds", solve_sim);

    const double sim_share = (analyze_sim + factor_sim + solve_sim) /
                             static_cast<double>(k);
    const Clock::time_point now = Clock::now();
    for (index_t j = 0; j < k; ++j) {
      Request& request = batch[static_cast<std::size_t>(j)];
      SolveResult result;
      result.status = RequestStatus::Ok;
      result.x.resize(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i) {
        result.x[static_cast<std::size_t>(i)] = solution(i, j);
      }
      result.analysis_cache_hit = analysis_reused;
      result.factor_reused = factor_reused;
      result.batch_size = static_cast<int>(k);
      result.simulated_seconds = sim_share;
      result.attempts = request.attempts;
      metrics.observe(
          "serve.request.latency_seconds",
          std::chrono::duration<double>(now - request.enqueued).count());
      fulfill(request, std::move(result));
    }
  } catch (const Error& e) {
    // The session's solver may be mid-phase — drop it so the next request
    // rebuilds from a clean state (the shared cache entry, if any, is
    // unaffected: PatternAnalysis is immutable).
    session.solver.reset();
    session.pattern_fp = 0;
    session.values_fp = 0;
    // Requests with retry budget left go back to the queue for another
    // attempt (possibly on a different session, against the rebuilt
    // state); the rest fail. try_push never blocks a session thread and
    // fails once the queue is closed or full, in which case the request
    // fails like one with no budget.
    std::int64_t failed = 0;
    std::int64_t retried = 0;
    std::int64_t exhausted = 0;
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Request& request = batch[i];
      if (request.retries_left > 0) {
        --request.retries_left;
        if (queue.try_push(request)) {
          ++retried;
          continue;
        }
      } else if (request.attempts > 1) {
        ++exhausted;
      }
      ++failed;
      failing.push_back(i);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.failed += failed;
      stats.retries += retried;
      stats.retry_exhausted += exhausted;
    }
    auto& metrics = obs::MetricsRegistry::global();
    if (failed > 0) {
      metrics.add("serve.requests.failed", static_cast<double>(failed));
    }
    if (retried > 0) {
      metrics.add("serve.retry.scheduled", static_cast<double>(retried));
    }
    if (exhausted > 0) {
      metrics.add("serve.retry.exhausted", static_cast<double>(exhausted));
    }
    // Fulfill only after the stats/metrics are published: a caller blocked
    // on the future must observe consistent counters once it wakes.
    for (std::size_t i : failing) {
      Request& request = batch[i];
      SolveResult failure = make_status_result(RequestStatus::Failed, e.what());
      failure.attempts = request.attempts;
      fulfill(request, std::move(failure));
    }
  }
}

SolverService::SolverService(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolverService::~SolverService() { shutdown(true); }

std::future<SolveResult> SolverService::submit(
    std::shared_ptr<const SparseSpd> a, std::vector<double> rhs,
    const RequestOptions& options) {
  if (a == nullptr) {
    throw InvalidArgumentError("SolverService::submit: null matrix");
  }
  if (static_cast<index_t>(rhs.size()) != a->n()) {
    throw InvalidArgumentError(
        "SolverService::submit: rhs has " + std::to_string(rhs.size()) +
        " entries, matrix dimension is " + std::to_string(a->n()));
  }
  auto& metrics = obs::MetricsRegistry::global();
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->stats.submitted;
  }
  metrics.increment("serve.requests.submitted");

  Request request;
  request.matrix = std::move(a);
  request.pattern_fp = request.matrix->pattern_fingerprint();
  request.values_fp = request.matrix->values_fingerprint();
  request.rhs = std::move(rhs);
  request.enqueued = Clock::now();
  request.retries_left = std::max(0, options.max_retries);
  if (options.deadline_seconds > 0.0) {
    request.has_deadline = true;
    request.deadline =
        request.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options.deadline_seconds));
  }
  std::future<SolveResult> future = request.promise.get_future();

  const bool accepted = impl_->options.admission == AdmissionPolicy::Block
                            ? impl_->queue.push(request)
                            : impl_->queue.try_push(request);
  if (!accepted) {
    // Blocked pushes only fail once the queue is closed; try_push also
    // fails on a full queue. Either way the request was never admitted.
    {
      std::lock_guard<std::mutex> lock(impl_->stats_mutex);
      ++impl_->stats.rejected;
    }
    metrics.increment("serve.requests.rejected");
    request.promise.set_value(make_status_result(RequestStatus::Rejected));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->stats.admitted;
  }
  metrics.increment("serve.requests.admitted");
  const double depth = static_cast<double>(impl_->queue.size());
  metrics.gauge_set("serve.queue.depth", depth);
  metrics.observe("serve.queue.depth_samples", depth);
  return future;
}

void SolverService::start() { impl_->queue.set_paused(false); }

void SolverService::shutdown(bool drain_queued) {
  std::lock_guard<std::mutex> lock(impl_->shutdown_mutex);
  if (!impl_->closed) {
    impl_->closed = true;
    if (!drain_queued) {
      // Close first so sessions stop pulling new work the moment their
      // current batch finishes, then cancel whatever is still queued.
      impl_->queue.close();
      std::vector<Request> dropped = impl_->queue.drain_now();
      for (Request& request : dropped) impl_->cancel(request);
    } else {
      impl_->queue.close();  // queued work remains poppable: full drain
    }
    for (std::thread& thread : impl_->threads) thread.join();
    impl_->threads.clear();
  }
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

const AnalysisCache::Stats SolverService::cache_stats() const {
  return impl_->cache.stats();
}

std::size_t SolverService::queue_depth() const { return impl_->queue.size(); }

int SolverService::num_sessions() const noexcept {
  return impl_->options.session_workers.empty()
             ? impl_->options.num_sessions
             : static_cast<int>(impl_->options.session_workers.size());
}

}  // namespace mfgpu::serve
