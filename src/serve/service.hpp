// SolverService — the request-serving surface over the phase-split Solver
// pipeline. Decouples request admission from numeric execution (the shape
// asynchronous task-based solvers use to reach throughput at scale):
//
//   submit() --> bounded request queue --> N worker sessions
//                 (admission control)       each owns a Solver + WorkerSpec
//                                           |
//              AnalysisCache (shared) <-----+--> batched multi-RHS solves
//
// Per request, a session resolves the cheapest viable path:
//   1. same pattern AND same values as its current factorization
//        -> reuse the factor outright (solve only);
//   2. same pattern, new values
//        -> Solver::refactor() (numeric phase only);
//   3. new pattern, AnalysisCache hit
//        -> adopt the shared PatternAnalysis (structure copy, no symbolic
//           recomputation), then factor;
//   4. new pattern, cache miss
//        -> full analyze, shared artifact inserted for everyone else.
//
// Batching: when a session picks up a request it also pulls every queued
// request with the same (pattern, values) fingerprints — up to
// max_batch_rhs — and solves them as one blocked multi-RHS pass. The
// numeric path per right-hand side is IDENTICAL to a direct
// Solver::solve(), so batched answers are bitwise equal to unbatched ones.
//
// Backpressure: the queue is bounded. AdmissionPolicy::Reject fails
// submit() immediately with RequestStatus::Rejected when full;
// AdmissionPolicy::Block blocks the submitter until space frees up.
// Per-request deadlines cancel requests that wait in the queue past their
// budget. shutdown(true) drains queued and in-flight work; shutdown(false)
// cancels what is still queued and finishes only in-flight batches.
//
// Fault handling: a batch whose execution throws (device fault that
// exhausted its CPU fallbacks, non-SPD matrix, ...) fails only that batch;
// the session drops its solver and rebuilds from a clean state on the next
// request. Requests carrying a RequestOptions::max_retries budget are
// re-enqueued instead of failed, with serve.retry.* metrics tracking the
// budget's use.
//
// Observability: every stage emits serve.* counters/gauges/histograms
// (queue depth, cache hit rate, admission rejects, batch widths, request
// latency for p50/p99 via HistogramData::percentile) and "serve" spans per
// request batch, so traced runs extend profile_report()-style audits to
// the service.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "serve/analysis_cache.hpp"

namespace mfgpu::serve {

enum class AdmissionPolicy {
  Reject,  ///< full queue fails the submit immediately (load shedding)
  Block    ///< full queue blocks the submitter (backpressure)
};

enum class RequestStatus {
  Ok,
  Rejected,          ///< admission control turned the request away
  Cancelled,         ///< still queued when a non-draining shutdown hit
  DeadlineExceeded,  ///< queue wait exceeded the request's deadline
  Failed             ///< execution error (e.g. matrix not SPD)
};
const char* status_name(RequestStatus status) noexcept;

struct RequestOptions {
  /// Max seconds the request may wait in the queue before execution starts
  /// (0 = no deadline). Checked when a session picks the request up.
  double deadline_seconds = 0.0;
  /// Bounded retry budget: when a batch execution fails (e.g. a device
  /// fault exhausted its CPU fallbacks), requests with budget left are
  /// re-enqueued for another attempt — possibly on a different session —
  /// instead of failing. 0 = fail on the first error. Retries keep the
  /// original enqueue time, so their extra latency shows up in the
  /// serve.request.latency_seconds histogram (p50/p99).
  int max_retries = 0;
};

struct SolveResult {
  RequestStatus status = RequestStatus::Failed;
  std::vector<double> x;  ///< solution (Ok only)
  std::string error;      ///< diagnostic for Failed
  bool analysis_cache_hit = false;  ///< symbolic analysis was reused
  bool factor_reused = false;       ///< numeric factorization was reused
  int batch_size = 1;               ///< rhs coalesced into the solve pass
  /// Simulated seconds charged to this request (its share of the batch's
  /// analyze + factor + blocked-solve cost) — the unit of the service's
  /// deterministic throughput metrics.
  double simulated_seconds = 0.0;
  /// Execution attempts this request consumed (1 = no retries).
  int attempts = 1;

  bool ok() const noexcept { return status == RequestStatus::Ok; }
};

struct ServeOptions {
  /// Worker sessions. Each owns its Solver; requests are multiplexed over
  /// them. Ignored when `session_workers` is non-empty.
  int num_sessions = 2;
  /// Optional per-session WorkerSpec list ({.has_gpu=true} gives that
  /// session a simulated-GPU numeric phase). Size overrides num_sessions.
  std::vector<WorkerSpec> session_workers;
  std::size_t queue_capacity = 64;
  AdmissionPolicy admission = AdmissionPolicy::Block;
  /// Byte budget of the shared pattern-keyed AnalysisCache.
  std::size_t analysis_cache_bytes = 256u << 20;
  /// Max right-hand sides coalesced into one blocked solve pass.
  index_t max_batch_rhs = 8;
  /// Template for each session's Solver (mode, ordering, threads, ...).
  SolverOptions solver;
  /// Construct with idle sessions; call start() to begin draining. Gives
  /// tests and benchmarks a deterministic queue composition.
  bool start_paused = false;
};

/// Monotonic service counters (exact, independent of obs recording; the
/// same numbers are mirrored as serve.* metrics when obs is enabled).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t batches = 0;        ///< executed solve passes
  std::int64_t analyses = 0;       ///< full symbolic analyses run
  std::int64_t analysis_reuses = 0;  ///< batches served without a full analyze
  std::int64_t factorizations = 0;   ///< numeric factor/refactor runs
  std::int64_t factor_reuses = 0;    ///< batches reusing the current factor
  std::int64_t retries = 0;          ///< failed requests re-enqueued
  std::int64_t retry_exhausted = 0;  ///< requests that failed after retrying
  double sim_analyze_seconds = 0.0;
  double sim_factor_seconds = 0.0;
  double sim_solve_seconds = 0.0;

  /// Fraction of executed batches that avoided a full symbolic analysis
  /// (session-local pattern reuse or an AnalysisCache hit).
  double analysis_hit_rate() const noexcept {
    const std::int64_t total = analyses + analysis_reuses;
    return total > 0
               ? static_cast<double>(analysis_reuses) / static_cast<double>(total)
               : 0.0;
  }
  double simulated_seconds() const noexcept {
    return sim_analyze_seconds + sim_factor_seconds + sim_solve_seconds;
  }
};

class SolverService {
 public:
  explicit SolverService(ServeOptions options);
  /// Drains queued and in-flight work (shutdown(true)).
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Submit one solve request: find x with A x = rhs. The matrix is held
  /// by shared_ptr so many requests can reference one instance without
  /// copies. Throws InvalidArgumentError on a null matrix or an rhs whose
  /// size differs from the matrix dimension; every other failure is
  /// reported through the returned future's SolveResult. After shutdown
  /// (or when a Reject-policy queue is full) the future resolves
  /// immediately with RequestStatus::Rejected.
  std::future<SolveResult> submit(std::shared_ptr<const SparseSpd> a,
                                  std::vector<double> rhs,
                                  const RequestOptions& options = {});

  /// Release the sessions of a start_paused service (idempotent).
  void start();

  /// Stop accepting work and wind down the sessions. drain_queued=true
  /// finishes everything already admitted; false cancels queued requests
  /// (futures resolve with Cancelled) and finishes only in-flight batches.
  /// Idempotent; safe to call concurrently with submitters.
  void shutdown(bool drain_queued = true);

  ServiceStats stats() const;
  const AnalysisCache::Stats cache_stats() const;
  std::size_t queue_depth() const;
  int num_sessions() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfgpu::serve
