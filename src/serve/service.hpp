// SolverService — the request-serving surface over the phase-split Solver
// pipeline. Decouples request admission from numeric execution (the shape
// asynchronous task-based solvers use to reach throughput at scale):
//
//   submit() --> bounded request queue --> N worker sessions
//                 (admission control)       each owns a Solver + WorkerSpec
//                                           |
//              AnalysisCache (shared) <-----+--> batched multi-RHS solves
//
// Per request, a session resolves the cheapest viable path:
//   1. same pattern AND same values as its current factorization
//        -> reuse the factor outright (solve only);
//   2. same pattern, new values
//        -> Solver::refactor() (numeric phase only);
//   3. new pattern, AnalysisCache hit
//        -> adopt the shared PatternAnalysis (structure copy, no symbolic
//           recomputation), then factor;
//   4. new pattern, cache miss
//        -> full analyze, shared artifact inserted for everyone else.
//
// Batching: when a session picks up a request it also pulls every queued
// request with the same (pattern, values) fingerprints — up to
// max_batch_rhs — and solves them as one blocked multi-RHS pass. The
// numeric path per right-hand side is IDENTICAL to a direct
// Solver::solve(), so batched answers are bitwise equal to unbatched ones.
//
// Backpressure: the queue is bounded. AdmissionPolicy::Reject fails
// submit() immediately with RequestStatus::Rejected when full;
// AdmissionPolicy::Block blocks the submitter until space frees up.
// Per-request deadlines cancel requests that wait in the queue past their
// budget. shutdown(true) drains queued and in-flight work; shutdown(false)
// cancels what is still queued and finishes only in-flight batches.
//
// Fault handling: a batch whose execution throws (device fault that
// exhausted its CPU fallbacks, non-SPD matrix, ...) fails only that batch;
// the session drops its solver and rebuilds from a clean state on the next
// request. Requests carrying a RequestOptions::max_retries budget are
// re-enqueued instead of failed, with serve.retry.* metrics tracking the
// budget's use.
//
// Observability. Three layers, from cheapest to richest:
//   - serve.* counters/gauges/histograms per stage (queue depth, cache hit
//     rate, admission rejects, batch widths, request latency), as before;
//   - request-scoped tracing: every admitted request gets an
//     obs::RequestContext (process-unique id, tenant, priority, admission
//     span as causal root) that rides with it through sessions, Solver
//     phases, DispatchExecutor decisions, retries, and injected faults.
//     Spans recorded while the request is bound are parent-linked, so the
//     Chrome-trace export renders each request's causal tree
//     (queue wait -> analyze/factor -> per-front F-U calls -> solve ->
//     retries); RequestOptions::collect_trace additionally returns the
//     session-thread slice of that tree inline in the SolveResult;
//   - rolling SLO telemetry: every finished request lands one sample in a
//     lock-free obs::SloAggregator window (p50/p99 latency, error/retry/
//     cache-hit rates, queue depth, budget burn rate), evaluated by an
//     obs::AlertEngine and published as slo.* gauges, a Prometheus text
//     snapshot, and JSON health samples that tools/mfgpu_top tails live.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "obs/alerts.hpp"
#include "obs/slo.hpp"
#include "serve/analysis_cache.hpp"

namespace mfgpu::serve {

enum class AdmissionPolicy {
  Reject,  ///< full queue fails the submit immediately (load shedding)
  Block    ///< full queue blocks the submitter (backpressure)
};

enum class RequestStatus {
  Ok,
  Rejected,          ///< admission control turned the request away
  Cancelled,         ///< still queued when a non-draining shutdown hit
  DeadlineExceeded,  ///< queue wait exceeded the request's deadline
  Failed             ///< execution error (e.g. matrix not SPD)
};
const char* status_name(RequestStatus status) noexcept;

struct RequestOptions {
  /// Max seconds the request may wait in the queue before execution starts
  /// (0 = no deadline). Checked when a session picks the request up.
  double deadline_seconds = 0.0;
  /// Bounded retry budget: when a batch execution fails (e.g. a device
  /// fault exhausted its CPU fallbacks), requests with budget left are
  /// re-enqueued for another attempt — possibly on a different session —
  /// instead of failing. 0 = fail on the first error. Retries keep the
  /// original enqueue time, so their extra latency shows up in the
  /// serve.request.latency_seconds histogram (p50/p99).
  int max_retries = 0;
  /// Caller-assigned tenant id carried on the request's trace spans
  /// (0 = none).
  std::uint64_t tenant = 0;
  /// Caller-assigned priority class, recorded on the admission span.
  int priority = 0;
  /// Return the request's trace slice inline in SolveResult::trace: every
  /// span the executing session thread recorded for this request's batch
  /// (queue wait, analyze/factor/solve tree, fault and retry markers).
  /// Requires obs recording to be on (an ObsScope / MFGPU_TRACE); the
  /// vector stays empty otherwise.
  bool collect_trace = false;
  /// Attach a critical-path summary of the factorization schedule that
  /// produced this request's factor (obs::ScheduleSummary on
  /// SolveResult::schedule). Requires ServeOptions::solver.record_schedule
  /// — sessions record schedules only when the service opted in; without
  /// it (or when the factor predates the recording), the summary comes
  /// back with valid == false.
  bool explain_schedule = false;
  /// Per-request override of ServeOptions::solver.batching (aggregated
  /// small-front execution; multifrontal/batched.hpp). std::nullopt = use
  /// the service default. Requests only coalesce into one solve pass when
  /// their effective batching configs agree, and a session whose current
  /// solver was built under a different config rebuilds it (the numeric
  /// factor is bitwise identical either way; only the simulated dispatch
  /// costs differ).
  std::optional<BatchingOptions> batching;
  /// Per-request override of ServeOptions::solver.cluster — the simulated
  /// distributed-cluster shard mode (cluster/cluster.hpp): num_nodes > 0
  /// factors this request's pattern across simulated nodes over the
  /// configured link. std::nullopt = use the service default. Like
  /// `batching`, the effective config is resolved at submit, joins the
  /// coalescing key, and a session whose solver was built under a
  /// different config rebuilds (the factor is bitwise identical to the
  /// serial one; only the simulated schedule differs).
  std::optional<ClusterOptions> cluster;
};

/// One span copied out of the trace for SolveResult::trace — an owned
/// snapshot (strings copied) so it outlives the obs session.
struct RequestTraceSpan {
  std::string category;
  std::string name;
  std::int64_t start_ns = 0;  ///< relative to the obs session epoch
  std::int64_t end_ns = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 = root of this request's tree
};

struct SolveResult {
  RequestStatus status = RequestStatus::Failed;
  std::vector<double> x;  ///< solution (Ok only)
  std::string error;      ///< diagnostic for Failed
  bool analysis_cache_hit = false;  ///< symbolic analysis was reused
  bool factor_reused = false;       ///< numeric factorization was reused
  int batch_size = 1;               ///< rhs coalesced into the solve pass
  /// Simulated seconds charged to this request (its share of the batch's
  /// analyze + factor + blocked-solve cost) — the unit of the service's
  /// deterministic throughput metrics.
  double simulated_seconds = 0.0;
  /// Execution attempts this request consumed (1 = no retries).
  int attempts = 1;
  /// Process-unique request id (nonzero for every submitted request,
  /// including rejected ones) — the key to find this request's spans in a
  /// Chrome-trace export.
  std::uint64_t request_id = 0;
  /// Critical-path summary of the factorization that produced the factor
  /// this request used (RequestOptions::explain_schedule): makespan and its
  /// per-cost-class attribution over the virtual schedule. valid == false
  /// unless the service records schedules (ServeOptions::solver
  /// .record_schedule) and the executing session factored with recording.
  obs::ScheduleSummary schedule;
  /// Per-request trace dump (RequestOptions::collect_trace): the executing
  /// session thread's spans for the batch that finished this request,
  /// parent-linked via span_id/parent_span. Empty unless requested AND obs
  /// recording was on.
  std::vector<RequestTraceSpan> trace;

  bool ok() const noexcept { return status == RequestStatus::Ok; }
};

struct ServeOptions {
  /// Worker sessions. Each owns its Solver; requests are multiplexed over
  /// them. Ignored when `session_workers` is non-empty.
  int num_sessions = 2;
  /// Optional per-session WorkerSpec list ({.has_gpu=true} gives that
  /// session a simulated-GPU numeric phase). Size overrides num_sessions.
  std::vector<WorkerSpec> session_workers;
  std::size_t queue_capacity = 64;
  AdmissionPolicy admission = AdmissionPolicy::Block;
  /// Byte budget of the shared pattern-keyed AnalysisCache.
  std::size_t analysis_cache_bytes = 256u << 20;
  /// Max right-hand sides coalesced into one blocked solve pass.
  index_t max_batch_rhs = 8;
  /// Template for each session's Solver (mode, ordering, threads, ...).
  /// solver.solve_threads routes every coalesced batch through the
  /// level-scheduled parallel triangular solve (the batch's simulated
  /// charge prices the parallel sweep accordingly); results stay bitwise
  /// identical to single-threaded serving.
  SolverOptions solver;
  /// Construct with idle sessions; call start() to begin draining. Gives
  /// tests and benchmarks a deterministic queue composition.
  bool start_paused = false;

  /// Rolling SLO window configuration (latency objective, error budget,
  /// window length, ring capacity).
  obs::SloOptions slo;
  /// Alert rules the health monitor evaluates over each window sample.
  /// Empty = obs::default_serve_alert_rules(queue_capacity).
  std::vector<obs::AlertRule> alert_rules;
  /// Period of the background health monitor thread; <= 0 disables the
  /// thread (tests drive sampling deterministically via sample_health()).
  double health_sample_seconds = 0.0;
  /// Append one JSON health sample per evaluation to this file (JSONL —
  /// the stream tools/mfgpu_top tails). "" = no file.
  std::string health_json_path;
  /// Rewrite a Prometheus text-format snapshot of the latest window on
  /// each evaluation. "" = no file.
  std::string prometheus_path;
};

/// Monotonic service counters (exact, independent of obs recording; the
/// same numbers are mirrored as serve.* metrics when obs is enabled).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t batches = 0;        ///< executed solve passes
  std::int64_t analyses = 0;       ///< full symbolic analyses run
  std::int64_t analysis_reuses = 0;  ///< batches served without a full analyze
  std::int64_t factorizations = 0;   ///< numeric factor/refactor runs
  std::int64_t factor_reuses = 0;    ///< batches reusing the current factor
  std::int64_t retries = 0;          ///< failed requests re-enqueued
  std::int64_t retry_exhausted = 0;  ///< requests that failed after retrying
  double sim_analyze_seconds = 0.0;
  double sim_factor_seconds = 0.0;
  double sim_solve_seconds = 0.0;

  /// Fraction of executed batches that avoided a full symbolic analysis
  /// (session-local pattern reuse or an AnalysisCache hit).
  double analysis_hit_rate() const noexcept {
    const std::int64_t total = analyses + analysis_reuses;
    return total > 0
               ? static_cast<double>(analysis_reuses) / static_cast<double>(total)
               : 0.0;
  }
  double simulated_seconds() const noexcept {
    return sim_analyze_seconds + sim_factor_seconds + sim_solve_seconds;
  }
};

class SolverService {
 public:
  explicit SolverService(ServeOptions options);
  /// Drains queued and in-flight work (shutdown(true)).
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Submit one solve request: find x with A x = rhs. The matrix is held
  /// by shared_ptr so many requests can reference one instance without
  /// copies. Throws InvalidArgumentError on a null matrix or an rhs whose
  /// size differs from the matrix dimension; every other failure is
  /// reported through the returned future's SolveResult. After shutdown
  /// (or when a Reject-policy queue is full) the future resolves
  /// immediately with RequestStatus::Rejected.
  std::future<SolveResult> submit(std::shared_ptr<const SparseSpd> a,
                                  std::vector<double> rhs,
                                  const RequestOptions& options = {});

  /// Release the sessions of a start_paused service (idempotent).
  void start();

  /// Stop accepting work and wind down the sessions. drain_queued=true
  /// finishes everything already admitted; false cancels queued requests
  /// (futures resolve with Cancelled) and finishes only in-flight batches.
  /// After the sessions join, takes one final health sample and flushes
  /// every active ObsScope (obs::flush_exports()), so traces and metrics
  /// for work served during shutdown reach their configured files.
  /// Idempotent; safe to call concurrently with submitters.
  void shutdown(bool drain_queued = true);

  /// Evaluate the SLO window NOW: aggregates the trailing window, publishes
  /// slo.* gauges, runs the alert rules, stores the result as health(), and
  /// appends/rewrites the configured health/Prometheus files. The health
  /// monitor thread calls this on its period; tests call it directly for
  /// deterministic sampling.
  obs::WindowStats sample_health();

  /// The most recent sample_health() result (zero-valued before the first).
  obs::WindowStats health() const;

  /// Alert-engine views (thread-safe): full transition history and the
  /// names of currently firing rules.
  std::vector<obs::AlertTransition> alert_history() const;
  std::vector<std::string> firing_alerts() const;

  ServiceStats stats() const;
  const AnalysisCache::Stats cache_stats() const;
  std::size_t queue_depth() const;
  int num_sessions() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfgpu::serve
