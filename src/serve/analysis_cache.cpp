#include "serve/analysis_cache.hpp"

#include <list>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace mfgpu::serve {

struct AnalysisCache::Impl {
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const PatternAnalysis> analysis;
  };
  /// Front = most recently used.
  std::list<Entry> lru;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_key;
};

AnalysisCache::AnalysisCache(std::size_t budget_bytes)
    : budget_(budget_bytes), impl_(std::make_unique<Impl>()) {
  MFGPU_CHECK(budget_bytes > 0, "AnalysisCache: byte budget must be positive");
}

AnalysisCache::~AnalysisCache() = default;

std::shared_ptr<const PatternAnalysis> AnalysisCache::lookup(
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = impl_->by_key.find(fingerprint);
  if (it == impl_->by_key.end()) {
    ++stats_.misses;
    obs::MetricsRegistry::global().increment("serve.cache.misses");
    return nullptr;
  }
  impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  ++stats_.hits;
  obs::MetricsRegistry::global().increment("serve.cache.hits");
  return it->second->analysis;
}

void AnalysisCache::insert(std::shared_ptr<const PatternAnalysis> analysis) {
  MFGPU_CHECK(analysis != nullptr, "AnalysisCache::insert: null analysis");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = analysis->fingerprint;
  const auto it = impl_->by_key.find(key);
  if (it != impl_->by_key.end()) {
    stats_.bytes -= it->second->analysis->approx_bytes;
    stats_.bytes += analysis->approx_bytes;
    it->second->analysis = std::move(analysis);
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  } else {
    impl_->lru.push_front(Impl::Entry{key, std::move(analysis)});
    impl_->by_key.emplace(key, impl_->lru.begin());
    stats_.bytes += impl_->lru.front().analysis->approx_bytes;
    stats_.entries = impl_->lru.size();
  }
  ++stats_.insertions;
  obs::MetricsRegistry::global().increment("serve.cache.insertions");
  evict_over_budget_locked();
  publish_gauges_locked();
}

void AnalysisCache::evict_over_budget_locked() {
  // Never evict the sole remaining entry: the working pattern must stay
  // resident even when it alone exceeds the budget.
  while (stats_.bytes > budget_ && impl_->lru.size() > 1) {
    const Impl::Entry& victim = impl_->lru.back();
    stats_.bytes -= victim.analysis->approx_bytes;
    impl_->by_key.erase(victim.fingerprint);
    impl_->lru.pop_back();
    ++stats_.evictions;
    obs::MetricsRegistry::global().increment("serve.cache.evictions");
  }
  stats_.entries = impl_->lru.size();
}

void AnalysisCache::publish_gauges_locked() {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.gauge_set("serve.cache.bytes", static_cast<double>(stats_.bytes));
  metrics.gauge_set("serve.cache.entries",
                    static_cast<double>(stats_.entries));
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  impl_->lru.clear();
  impl_->by_key.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  publish_gauges_locked();
}

}  // namespace mfgpu::serve
