#include "serve/cost.hpp"

#include "gpusim/gpublas.hpp"
#include "multifrontal/parallel_solve.hpp"
#include "multifrontal/solve.hpp"

namespace mfgpu::serve {

double estimated_analyze_seconds(const SparseSpd& a,
                                 const SymbolicFactor& sym) {
  // Ordering: the quotient-graph minimum-degree loop revisits each
  // adjacency entry on every degree update of an incident vertex —
  // effectively a few dozen irregular touches per stored entry. Symbolic
  // structure: one streamed pass over the factor pattern per supernode row
  // merge. Both priced at the host assembly rate used by the other
  // host-side estimates; the irregularity is folded into the touch counts.
  const double ordering_touches =
      48.0 * static_cast<double>(a.nnz_full()) +
      16.0 * static_cast<double>(a.n());
  const double symbolic_touches = 4.0 * static_cast<double>(sym.factor_nnz());
  return (ordering_touches + symbolic_touches) / host_assembly_rate();
}

double estimated_batch_solve_seconds(const SymbolicFactor& sym,
                                     index_t num_rhs, int solve_threads) {
  if (solve_threads <= 1) return estimated_solve_seconds(sym, num_rhs);
  const SolveSchedule schedule = build_solve_schedule(sym);
  return estimated_solve_seconds(sym, schedule, num_rhs, solve_threads);
}

}  // namespace mfgpu::serve
