#include "autotune/features.hpp"

#include <cmath>

namespace mfgpu {

FeatureVector raw_features(index_t m, index_t k) {
  MFGPU_CHECK(m >= 0 && k >= 1, "raw_features: need m >= 0, k >= 1");
  const double md = static_cast<double>(m);
  const double kd = static_cast<double>(k);
  return {md, kd, md / kd, md * md, md * kd, kd * kd, kd * kd * kd,
          md * kd * kd};
}

FeatureScaler::FeatureScaler() {
  means_.fill(0.0);
  stds_.fill(1.0);
}

FeatureScaler FeatureScaler::fit(std::span<const FeatureVector> samples) {
  MFGPU_CHECK(!samples.empty(), "FeatureScaler: no samples");
  FeatureScaler scaler;
  const double n = static_cast<double>(samples.size());
  for (int f = 0; f < kNumFeatures; ++f) {
    double mean = 0.0;
    for (const auto& s : samples) mean += s[static_cast<std::size_t>(f)];
    mean /= n;
    double var = 0.0;
    for (const auto& s : samples) {
      const double d = s[static_cast<std::size_t>(f)] - mean;
      var += d * d;
    }
    var /= n;
    scaler.means_[static_cast<std::size_t>(f)] = mean;
    scaler.stds_[static_cast<std::size_t>(f)] =
        (var > 0.0) ? std::sqrt(var) : 1.0;
  }
  return scaler;
}

FeatureScaler FeatureScaler::from_moments(const FeatureVector& means,
                                          const FeatureVector& stddevs) {
  FeatureScaler scaler;
  scaler.means_ = means;
  scaler.stds_ = stddevs;
  for (double v : stddevs) {
    MFGPU_CHECK(v > 0.0, "FeatureScaler: stddevs must be positive");
  }
  return scaler;
}

FeatureVector FeatureScaler::apply(const FeatureVector& raw) const {
  FeatureVector out;
  for (int f = 0; f < kNumFeatures; ++f) {
    out[static_cast<std::size_t>(f)] =
        (raw[static_cast<std::size_t>(f)] - means_[static_cast<std::size_t>(f)]) /
        stds_[static_cast<std::size_t>(f)];
  }
  return out;
}

}  // namespace mfgpu
