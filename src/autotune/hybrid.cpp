#include "autotune/hybrid.hpp"

#include <map>
#include <utility>

namespace mfgpu {

DispatchExecutor make_ideal_hybrid(PolicyTimer& timer,
                                   ExecutorOptions options) {
  auto cache = std::make_shared<std::map<std::pair<index_t, index_t>, Policy>>();
  return DispatchExecutor(
      "P_IH",
      [&timer, cache](index_t m, index_t k) {
        const auto key = std::make_pair(m, k);
        auto it = cache->find(key);
        if (it == cache->end()) {
          it = cache->emplace(key, timer.best_policy(m, k)).first;
        }
        return it->second;
      },
      options);
}

DispatchExecutor make_model_hybrid(const TrainedPolicyModel& model,
                                   ExecutorOptions options) {
  // Copy the (small) model into the closure so the executor is
  // self-contained.
  auto owned = std::make_shared<TrainedPolicyModel>(model);
  return DispatchExecutor(
      "P_MH",
      [owned](index_t m, index_t k) { return owned->choose(m, k); }, options);
}

HybridEvaluation evaluate_hybrids(const PolicyDataset& ds,
                                  const TrainedPolicyModel& model,
                                  const BaselineThresholds& thresholds) {
  MFGPU_CHECK(ds.size() > 0, "evaluate_hybrids: empty dataset");
  HybridEvaluation eval;
  std::size_t model_hits = 0;
  std::size_t baseline_hits = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const int ideal = ds.best_policy_index(i);
    const int chosen =
        static_cast<int>(model.choose(ds.ms[i], ds.ks[i])) - 1;
    const int base =
        static_cast<int>(baseline_choice(thresholds, ds.ms[i], ds.ks[i])) - 1;
    eval.total_ideal += ds.time(i, ideal);
    eval.total_model += ds.time(i, chosen);
    eval.total_baseline += ds.time(i, base);
    if (chosen == ideal) ++model_hits;
    if (base == ideal) ++baseline_hits;
  }
  eval.model_accuracy =
      static_cast<double>(model_hits) / static_cast<double>(ds.size());
  eval.baseline_accuracy =
      static_cast<double>(baseline_hits) / static_cast<double>(ds.size());
  return eval;
}

}  // namespace mfgpu
