#include "autotune/hybrid.hpp"

#include <map>
#include <utility>

namespace mfgpu {

DispatchExecutor make_ideal_hybrid(PolicyTimer& timer,
                                   ExecutorOptions options) {
  // One memoized dry-run argmin per (m, k), shared between the chooser and
  // the decision-log predictor so each unique shape is simulated once.
  struct BestCall {
    Policy policy = Policy::P1;
    double seconds = 0.0;
  };
  auto cache =
      std::make_shared<std::map<std::pair<index_t, index_t>, BestCall>>();
  auto best_of = [&timer, cache](const FuCall& call) -> const BestCall& {
    const auto key = std::make_pair(call.m, call.k);
    auto it = cache->find(key);
    if (it == cache->end()) {
      BestCall best;
      best.policy = timer.best_policy(call);
      best.seconds = timer.time(best.policy, call);
      it = cache->emplace(key, best).first;
    }
    return it->second;
  };
  DispatchExecutor executor(
      "P_IH",
      [best_of](const FuCall& call) { return best_of(call).policy; },
      options);
  executor.set_predictor([best_of](const FuCall& call, Policy chosen) {
    const BestCall& best = best_of(call);
    // The dispatcher always executes its own argmin; if the device was
    // absent and P1 was forced instead, the oracle's prediction does not
    // apply to what ran.
    return chosen == best.policy ? best.seconds : -1.0;
  });
  return executor;
}

DispatchExecutor make_model_hybrid(const TrainedPolicyModel& model,
                                   ExecutorOptions options) {
  // Copy the (small) model into the closure so the executor is
  // self-contained.
  auto owned = std::make_shared<TrainedPolicyModel>(model);
  return DispatchExecutor(
      "P_MH",
      [owned](const FuCall& call) { return owned->choose(call.m, call.k); },
      options);
}

HybridEvaluation evaluate_hybrids(const PolicyDataset& ds,
                                  const TrainedPolicyModel& model,
                                  const BaselineThresholds& thresholds) {
  MFGPU_CHECK(ds.size() > 0, "evaluate_hybrids: empty dataset");
  HybridEvaluation eval;
  std::size_t model_hits = 0;
  std::size_t baseline_hits = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const int ideal = ds.best_policy_index(i);
    const int chosen =
        static_cast<int>(model.choose(ds.ms[i], ds.ks[i])) - 1;
    const int base = static_cast<int>(baseline_choice(
                         thresholds, FuCall{.m = ds.ms[i], .k = ds.ks[i]})) -
                     1;
    eval.total_ideal += ds.time(i, ideal);
    eval.total_model += ds.time(i, chosen);
    eval.total_baseline += ds.time(i, base);
    if (chosen == ideal) ++model_hits;
    if (base == ideal) ++baseline_hits;
  }
  eval.model_accuracy =
      static_cast<double>(model_hits) / static_cast<double>(ds.size());
  eval.baseline_accuracy =
      static_cast<double>(baseline_hits) / static_cast<double>(ds.size());
  return eval;
}

}  // namespace mfgpu
