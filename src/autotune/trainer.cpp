#include "autotune/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

namespace mfgpu {

Policy TrainedPolicyModel::choose(index_t m, index_t k) const {
  const FeatureVector x = scaler(m, k);
  return policy_from_index(model.predict(x) + 1);
}

double TrainedPolicyModel::expected_time(const PolicyDataset& ds,
                                         std::size_t i) const {
  const FeatureVector x = scaler(ds.ms[i], ds.ks[i]);
  const std::vector<double> p = model.probabilities(x);
  double expected = 0.0;
  for (int j = 0; j < model.num_classes(); ++j) {
    expected += p[static_cast<std::size_t>(j)] * ds.time(i, j);
  }
  return expected;
}

double expected_time_objective(const TrainedPolicyModel& model,
                               const PolicyDataset& ds) {
  double total = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    total += model.expected_time(ds, i);
  }
  return total / static_cast<double>(ds.size());
}

namespace {

/// Shared Adam loop over the classifier weights. `gradient(features, i, p)`
/// returns the per-class dL/dscore for example i with probabilities p.
TrainedPolicyModel train_common(
    const PolicyDataset& ds, const TrainOptions& options,
    const std::function<void(const PolicyDataset&, std::size_t,
                             const std::vector<double>&,
                             std::vector<double>&)>& score_gradient,
    const TrainedPolicyModel* warm_start = nullptr) {
  MFGPU_CHECK(ds.size() > 0, "train: empty dataset");
  TrainedPolicyModel result;
  result.model = MultinomialLogistic(kNumFeatures, ds.num_policies);
  if (warm_start != nullptr) {
    MFGPU_CHECK(warm_start->model.num_classes() == ds.num_policies,
                "train: warm start class count mismatch");
    result.model = warm_start->model;
  }

  std::vector<FeatureVector> raw;
  raw.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    raw.push_back(raw_features(ds.ms[i], ds.ks[i]));
  }
  result.scaler = FeatureScaler::fit(raw);
  std::vector<FeatureVector> features;
  features.reserve(ds.size());
  for (const auto& r : raw) features.push_back(result.scaler.apply(r));

  MultinomialLogistic& model = result.model;
  const int d = model.num_features();
  const int r = model.num_classes();
  const std::size_t num_weights = static_cast<std::size_t>((d + 1) * r);
  std::vector<double> grad(num_weights), m1(num_weights, 0.0),
      m2(num_weights, 0.0);
  std::vector<double> dscore(static_cast<std::size_t>(r));

  const double inv_n = 1.0 / static_cast<double>(ds.size());
  double previous_objective = std::numeric_limits<double>::infinity();
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double objective = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto& x = features[i];
      const std::vector<double> p = model.probabilities(x);
      score_gradient(ds, i, p, dscore);
      for (int j = 0; j < r; ++j) {
        const double g = dscore[static_cast<std::size_t>(j)] * inv_n;
        const std::size_t base = static_cast<std::size_t>(j * (d + 1));
        for (int f = 0; f < d; ++f) {
          grad[base + static_cast<std::size_t>(f)] +=
              g * x[static_cast<std::size_t>(f)];
        }
        grad[base + static_cast<std::size_t>(d)] += g;  // bias
        objective += p[static_cast<std::size_t>(j)] * ds.time(i, j) * inv_n;
      }
    }
    // L2 regularization (not on biases).
    auto weights = model.raw_weights();
    for (int j = 0; j < r; ++j) {
      const std::size_t base = static_cast<std::size_t>(j * (d + 1));
      for (int f = 0; f < d; ++f) {
        grad[base + static_cast<std::size_t>(f)] +=
            options.l2_penalty * weights[base + static_cast<std::size_t>(f)];
      }
    }
    // Adam step.
    const double b1t = 1.0 - std::pow(options.adam_beta1, iter);
    const double b2t = 1.0 - std::pow(options.adam_beta2, iter);
    for (std::size_t w = 0; w < num_weights; ++w) {
      m1[w] = options.adam_beta1 * m1[w] + (1.0 - options.adam_beta1) * grad[w];
      m2[w] = options.adam_beta2 * m2[w] +
              (1.0 - options.adam_beta2) * grad[w] * grad[w];
      const double mhat = m1[w] / b1t;
      const double vhat = m2[w] / b2t;
      weights[w] -= options.learning_rate * mhat / (std::sqrt(vhat) + 1e-9);
    }
    if (iter % 50 == 0) {
      if (previous_objective - objective <
          options.tolerance * std::abs(previous_objective)) {
        break;
      }
      previous_objective = objective;
    }
  }
  return result;
}

}  // namespace

TrainedPolicyModel train_expected_time(const PolicyDataset& ds,
                                       const TrainOptions& options) {
  // Normalize times so the gradient scale is data-independent; the RELATIVE
  // weighting across examples (big calls matter more) is preserved, which
  // is exactly the cost-sensitivity the paper wants.
  double mean_time = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (int j = 0; j < ds.num_policies; ++j) mean_time += ds.time(i, j);
  }
  mean_time /= static_cast<double>(ds.size()) *
               static_cast<double>(ds.num_policies);
  const double scale = (mean_time > 0.0) ? 1.0 / mean_time : 1.0;

  // The expected-time objective is smooth but not convex in theta; from a
  // cold start Adam can settle on a poor boundary layout. Warm-start from
  // the (convex) cross-entropy solution — calibrate the boundaries first,
  // then shift them cost-sensitively.
  TrainOptions warm_options = options;
  warm_options.max_iterations = std::max(500, options.max_iterations / 4);
  const TrainedPolicyModel warm = train_cross_entropy(ds, warm_options);

  return train_common(
      ds, options,
      [scale](const PolicyDataset& data, std::size_t i,
              const std::vector<double>& p, std::vector<double>& dscore) {
        // dL/ds_j = p_j (T_j - sum_l p_l T_l), with T in normalized units.
        double expected = 0.0;
        for (int l = 0; l < data.num_policies; ++l) {
          expected += p[static_cast<std::size_t>(l)] * data.time(i, l) * scale;
        }
        for (int j = 0; j < data.num_policies; ++j) {
          dscore[static_cast<std::size_t>(j)] =
              p[static_cast<std::size_t>(j)] *
              (data.time(i, j) * scale - expected);
        }
      },
      &warm);
}

TrainedPolicyModel train_cross_entropy(const PolicyDataset& ds,
                                       const TrainOptions& options) {
  return train_common(
      ds, options,
      [](const PolicyDataset& data, std::size_t i, const std::vector<double>& p,
         std::vector<double>& dscore) {
        const int label = data.best_policy_index(i);
        for (int j = 0; j < data.num_policies; ++j) {
          dscore[static_cast<std::size_t>(j)] =
              p[static_cast<std::size_t>(j)] - (j == label ? 1.0 : 0.0);
        }
      });
}

}  // namespace mfgpu
