// Feature map for the policy classifier (paper Section VI-B):
// x(m, k) = [m, k, m/k, m^2, mk, k^2, k^3, mk^2], standardized to zero mean
// and unit variance for optimizer conditioning (the raw features span 12
// orders of magnitude).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace mfgpu {

inline constexpr int kNumFeatures = 8;
using FeatureVector = std::array<double, kNumFeatures>;

FeatureVector raw_features(index_t m, index_t k);

class FeatureScaler {
 public:
  FeatureScaler();  ///< identity scaling

  static FeatureScaler fit(std::span<const FeatureVector> samples);
  /// Reconstruct from stored moments (model deserialization).
  static FeatureScaler from_moments(const FeatureVector& means,
                                    const FeatureVector& stddevs);

  FeatureVector apply(const FeatureVector& raw) const;
  FeatureVector operator()(index_t m, index_t k) const {
    return apply(raw_features(m, k));
  }

  const FeatureVector& means() const noexcept { return means_; }
  const FeatureVector& stddevs() const noexcept { return stds_; }

 private:
  FeatureVector means_;
  FeatureVector stds_;
};

}  // namespace mfgpu
