#include "autotune/logistic_model.hpp"

#include <algorithm>
#include <cmath>

namespace mfgpu {

MultinomialLogistic::MultinomialLogistic(int num_features, int num_classes)
    : d_(num_features), r_(num_classes) {
  MFGPU_CHECK(num_features > 0 && num_classes >= 2,
              "MultinomialLogistic: bad dimensions");
  weights_.assign(static_cast<std::size_t>((d_ + 1) * r_), 0.0);
}

double& MultinomialLogistic::weight(int f, int j) {
  MFGPU_CHECK(f >= 0 && f <= d_ && j >= 0 && j < r_,
              "MultinomialLogistic: weight index out of range");
  return weights_[static_cast<std::size_t>(j * (d_ + 1) + f)];
}

double MultinomialLogistic::weight(int f, int j) const {
  return const_cast<MultinomialLogistic*>(this)->weight(f, j);
}

std::vector<double> MultinomialLogistic::scores(
    std::span<const double> x) const {
  MFGPU_CHECK(static_cast<int>(x.size()) == d_,
              "MultinomialLogistic: feature size mismatch");
  std::vector<double> s(static_cast<std::size_t>(r_), 0.0);
  for (int j = 0; j < r_; ++j) {
    double sum = weight(d_, j);  // bias
    for (int f = 0; f < d_; ++f) {
      sum += weight(f, j) * x[static_cast<std::size_t>(f)];
    }
    s[static_cast<std::size_t>(j)] = sum;
  }
  return s;
}

std::vector<double> MultinomialLogistic::probabilities(
    std::span<const double> x) const {
  std::vector<double> p = scores(x);
  const double max_score = *std::max_element(p.begin(), p.end());
  double z = 0.0;
  for (double& v : p) {
    v = std::exp(v - max_score);
    z += v;
  }
  for (double& v : p) v /= z;
  return p;
}

int MultinomialLogistic::predict(std::span<const double> x) const {
  const std::vector<double> s = scores(x);
  return static_cast<int>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

}  // namespace mfgpu
