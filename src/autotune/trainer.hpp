// Training the policy classifier.
//
// The paper's key departure from standard classification (Section VI-B):
// instead of penalizing every misprediction equally, minimize the EXPECTED
// COMPUTATION TIME over the empirical data (Eq. 3):
//     theta* = argmin_theta sum_i sum_j p_theta(y = C_j | x_i) T_ij
// so errors on large calls, or errors that pick a badly sub-optimal policy,
// cost proportionally more. We solve the (smooth, unconstrained) problem
// with Adam; a plain cross-entropy trainer on argmin labels is provided for
// the cost-sensitivity ablation (the approach of Dongarra et al. / Xu et
// al. that the paper argues against).
#pragma once

#include "autotune/dataset.hpp"
#include "autotune/logistic_model.hpp"
#include "policy/policy.hpp"

namespace mfgpu {

struct TrainOptions {
  int max_iterations = 4000;
  double learning_rate = 0.08;
  double l2_penalty = 1e-4;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  /// Stop when the relative objective improvement over 50 iterations is
  /// below this.
  double tolerance = 1e-8;
};

/// A trained policy predictor: scaler + classifier + the glue to Policy.
/// 4-class models choose among the per-front policies P1..P4; 5-class
/// models (trained on a dataset with the batched column) may also return
/// Policy::Batched (class index 4 -> policy_from_index(5)).
struct TrainedPolicyModel {
  FeatureScaler scaler;
  MultinomialLogistic model{kNumFeatures, 4};

  Policy choose(index_t m, index_t k) const;
  /// Expected time of the model's soft prediction on one example.
  double expected_time(const PolicyDataset& ds, std::size_t i) const;
};

/// Objective value (mean expected time, seconds) of a model on a dataset.
double expected_time_objective(const TrainedPolicyModel& model,
                               const PolicyDataset& ds);

/// The paper's trainer: minimize expected computation time.
TrainedPolicyModel train_expected_time(const PolicyDataset& ds,
                                       const TrainOptions& options = {});

/// Ablation trainer: standard 0/1 cross-entropy on the argmin labels.
TrainedPolicyModel train_cross_entropy(const PolicyDataset& ds,
                                       const TrainOptions& options = {});

}  // namespace mfgpu
