// Training data for the policy classifier: (m, k) call dimensions paired
// with the observed computation time of every policy (paper: T_ij for
// matrix A_i under policy C_j).
#pragma once

#include <utility>
#include <vector>

#include "autotune/features.hpp"
#include "policy/executors.hpp"
#include "support/rng.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

struct PolicyDataset {
  std::vector<index_t> ms;
  std::vector<index_t> ks;
  /// times[i * 4 + j] = observed time of example i under policy j (0-based).
  std::vector<double> times;

  std::size_t size() const noexcept { return ms.size(); }
  double time(std::size_t i, int policy_index) const {
    return times[i * 4 + static_cast<std::size_t>(policy_index)];
  }
  int best_policy_index(std::size_t i) const;
  void append(index_t m, index_t k, const std::array<double, 4>& t);
};

/// The (m, k) of every supernode of a symbolic factorization — the
/// empirical call distribution the paper trains on.
std::vector<std::pair<index_t, index_t>> dims_from_symbolic(
    const SymbolicFactor& sym);

/// Log-spaced (m, k) grid covering the analysis range (used to densify the
/// training set beyond the dims any one matrix produces).
std::vector<std::pair<index_t, index_t>> log_grid_dims(index_t max_m,
                                                       index_t max_k,
                                                       int points_per_axis);

/// Measure all four policies for each dims entry with the dry-run timer.
/// `noise_rel` > 0 adds multiplicative lognormal-ish noise (timing jitter).
PolicyDataset build_dataset(
    const std::vector<std::pair<index_t, index_t>>& dims, PolicyTimer& timer,
    double noise_rel = 0.0, Rng* rng = nullptr);

}  // namespace mfgpu
