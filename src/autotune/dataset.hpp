// Training data for the policy classifier: (m, k) call dimensions paired
// with the observed computation time of every policy (paper: T_ij for
// matrix A_i under policy C_j).
#pragma once

#include <array>
#include <span>
#include <utility>
#include <vector>

#include "autotune/features.hpp"
#include "policy/executors.hpp"
#include "support/rng.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace mfgpu {

struct PolicyDataset {
  /// Columns per example: 4 for the per-front policies P1..P4, 5 when the
  /// dataset also carries the batched-dispatch column (class index 4 maps
  /// to Policy::Batched via policy_from_index(5)).
  int num_policies = 4;
  std::vector<index_t> ms;
  std::vector<index_t> ks;
  /// times[i * num_policies + j] = time of example i under policy j
  /// (0-based).
  std::vector<double> times;

  std::size_t size() const noexcept { return ms.size(); }
  double time(std::size_t i, int policy_index) const {
    return times[i * static_cast<std::size_t>(num_policies) +
                 static_cast<std::size_t>(policy_index)];
  }
  int best_policy_index(std::size_t i) const;
  void append(index_t m, index_t k, std::span<const double> t);
  void append(index_t m, index_t k, const std::array<double, 4>& t) {
    append(m, k, std::span<const double>(t));
  }
};

/// The (m, k) of every supernode of a symbolic factorization — the
/// empirical call distribution the paper trains on.
std::vector<std::pair<index_t, index_t>> dims_from_symbolic(
    const SymbolicFactor& sym);

/// Log-spaced (m, k) grid covering the analysis range (used to densify the
/// training set beyond the dims any one matrix produces).
std::vector<std::pair<index_t, index_t>> log_grid_dims(index_t max_m,
                                                       index_t max_k,
                                                       int points_per_axis);

/// Measure all four policies for each dims entry with the dry-run timer.
/// `noise_rel` > 0 adds multiplicative lognormal-ish noise (timing jitter).
/// `batched_width` > 0 appends a fifth column: the per-front share of an
/// aggregated dispatch of that many same-shaped fronts (Policy::Batched),
/// making the trained classifier a 5-class model.
PolicyDataset build_dataset(
    const std::vector<std::pair<index_t, index_t>>& dims, PolicyTimer& timer,
    double noise_rel = 0.0, Rng* rng = nullptr, int batched_width = 0);

}  // namespace mfgpu
