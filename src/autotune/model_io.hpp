// Persistence for trained policy models. The paper pitches the auto-tuner
// as "readily adaptable for ... different CPU-GPU combinations": tune once
// per installation (offline, from empirical timing data), then ship the
// model file and load it at solver startup.
//
// Format: a small self-describing text file
//   mfgpu-policy-model 1
//   features 8 classes 4
//   scaler_means <8 doubles>
//   scaler_stds  <8 doubles>
//   weights <(8+1)*4 doubles, class-major, bias last per class>
#pragma once

#include <iosfwd>
#include <string>

#include "autotune/trainer.hpp"

namespace mfgpu {

void save_policy_model(std::ostream& os, const TrainedPolicyModel& model);
void save_policy_model(const std::string& path,
                       const TrainedPolicyModel& model);

/// Throws InvalidArgumentError on malformed input or version mismatch.
TrainedPolicyModel load_policy_model(std::istream& is);
TrainedPolicyModel load_policy_model(const std::string& path);

}  // namespace mfgpu
