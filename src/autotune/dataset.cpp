#include "autotune/dataset.hpp"

#include <algorithm>
#include <cmath>

namespace mfgpu {

int PolicyDataset::best_policy_index(std::size_t i) const {
  int best = 0;
  for (int j = 1; j < num_policies; ++j) {
    if (time(i, j) < time(i, best)) best = j;
  }
  return best;
}

void PolicyDataset::append(index_t m, index_t k, std::span<const double> t) {
  MFGPU_CHECK(static_cast<int>(t.size()) == num_policies,
              "PolicyDataset::append: wrong number of policy times");
  ms.push_back(m);
  ks.push_back(k);
  times.insert(times.end(), t.begin(), t.end());
}

std::vector<std::pair<index_t, index_t>> dims_from_symbolic(
    const SymbolicFactor& sym) {
  std::vector<std::pair<index_t, index_t>> dims;
  dims.reserve(static_cast<std::size_t>(sym.num_supernodes()));
  for (const auto& sn : sym.supernodes()) {
    dims.emplace_back(sn.num_update_rows(), sn.width());
  }
  return dims;
}

std::vector<std::pair<index_t, index_t>> log_grid_dims(index_t max_m,
                                                       index_t max_k,
                                                       int points_per_axis) {
  MFGPU_CHECK(max_m >= 1 && max_k >= 1 && points_per_axis >= 2,
              "log_grid_dims: bad parameters");
  auto axis = [points_per_axis](index_t max_value) {
    std::vector<index_t> values;
    for (int i = 0; i < points_per_axis; ++i) {
      const double v = std::pow(static_cast<double>(max_value),
                                static_cast<double>(i) /
                                    (points_per_axis - 1));
      const auto iv = static_cast<index_t>(std::lround(v));
      if (values.empty() || iv != values.back()) values.push_back(iv);
    }
    return values;
  };
  std::vector<std::pair<index_t, index_t>> dims;
  const auto ms = axis(max_m);
  const auto ks = axis(max_k);
  for (index_t k : ks) {
    dims.emplace_back(0, k);  // root-style calls (paper's m = 0 special case)
    for (index_t m : ms) dims.emplace_back(m, k);
  }
  return dims;
}

PolicyDataset build_dataset(
    const std::vector<std::pair<index_t, index_t>>& dims, PolicyTimer& timer,
    double noise_rel, Rng* rng, int batched_width) {
  MFGPU_CHECK(noise_rel == 0.0 || rng != nullptr,
              "build_dataset: noise requires an Rng");
  PolicyDataset ds;
  ds.num_policies = (batched_width > 0) ? 5 : 4;
  ds.ms.reserve(dims.size());
  ds.ks.reserve(dims.size());
  ds.times.reserve(dims.size() * static_cast<std::size_t>(ds.num_policies));
  std::vector<double> t(static_cast<std::size_t>(ds.num_policies));
  for (const auto& [m, k] : dims) {
    const FuCall call{.m = m, .k = k};
    for (int j = 0; j < ds.num_policies; ++j) {
      double value = (j < 4)
                         ? timer.time(policy_from_index(j + 1), call)
                         : timer.time_batched(call, batched_width);
      if (noise_rel > 0.0) {
        value *= std::exp(rng->normal(0.0, noise_rel));
      }
      t[static_cast<std::size_t>(j)] = value;
    }
    ds.append(m, k, t);
  }
  return ds;
}

}  // namespace mfgpu
