// Multinomial logistic classifier (paper Section VI-B):
//   p_theta(y = C_j | x) = exp(x . theta_j) / sum_l exp(x . theta_l)
// with theta a (d+1) x r weight matrix (bias folded in as the last row).
// Prediction reduces to argmax of the linear scores (paper Eq. 5) — O(dr)
// per call, cheap enough to sit inside every factor-update dispatch.
#pragma once

#include <span>
#include <vector>

#include "autotune/features.hpp"

namespace mfgpu {

class MultinomialLogistic {
 public:
  MultinomialLogistic(int num_features, int num_classes);

  int num_features() const noexcept { return d_; }
  int num_classes() const noexcept { return r_; }

  /// Linear scores x . theta_j (+ bias) for each class.
  std::vector<double> scores(std::span<const double> x) const;
  /// Softmax probabilities.
  std::vector<double> probabilities(std::span<const double> x) const;
  /// argmax over scores (Eq. 5).
  int predict(std::span<const double> x) const;

  /// Weight for (feature f, class j); f == num_features() is the bias row.
  double& weight(int f, int j);
  double weight(int f, int j) const;
  std::span<double> raw_weights() noexcept { return weights_; }
  std::span<const double> raw_weights() const noexcept { return weights_; }

 private:
  int d_;
  int r_;
  std::vector<double> weights_;  ///< (d_+1) x r_, column-major by class
};

}  // namespace mfgpu
