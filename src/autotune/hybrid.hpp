// The three hybrid dispatchers the paper compares (Section VI-C):
//   P_IH — ideal hybrid: retrospective argmin over the observed timings
//   P_MH — model hybrid: the trained classifier
//   P_BH — baseline hybrid: op-count thresholds (policy/baseline_hybrid.hpp)
// plus per-call evaluation metrics (regret vs ideal, accuracy).
#pragma once

#include <memory>

#include "autotune/trainer.hpp"
#include "policy/baseline_hybrid.hpp"
#include "policy/executors.hpp"

namespace mfgpu {

/// Ideal-hybrid dispatcher: memoized dry-run argmin per (m, k). `timer`
/// must outlive the returned executor.
DispatchExecutor make_ideal_hybrid(PolicyTimer& timer,
                                   ExecutorOptions options = {});

/// Model-hybrid dispatcher around a trained classifier (copied in).
DispatchExecutor make_model_hybrid(const TrainedPolicyModel& model,
                                   ExecutorOptions options = {});

/// Per-call comparison of the three hybrids on a dataset.
struct HybridEvaluation {
  double total_ideal = 0.0;     ///< sum of per-call best times
  double total_model = 0.0;     ///< sum of times of the model's choices
  double total_baseline = 0.0;  ///< sum of times of the baseline's choices
  double model_accuracy = 0.0;  ///< fraction of calls where model == ideal
  double baseline_accuracy = 0.0;

  /// total_model / total_ideal - 1 (the paper reports ~2%).
  double model_regret() const { return total_model / total_ideal - 1.0; }
  double baseline_regret() const { return total_baseline / total_ideal - 1.0; }
};

HybridEvaluation evaluate_hybrids(const PolicyDataset& ds,
                                  const TrainedPolicyModel& model,
                                  const BaselineThresholds& thresholds);

}  // namespace mfgpu
