#include "autotune/model_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace mfgpu {

void save_policy_model(std::ostream& os, const TrainedPolicyModel& model) {
  os << "mfgpu-policy-model 1\n";
  os << "features " << model.model.num_features() << " classes "
     << model.model.num_classes() << "\n";
  os << std::setprecision(17);
  os << "scaler_means";
  for (double v : model.scaler.means()) os << ' ' << v;
  os << "\nscaler_stds";
  for (double v : model.scaler.stddevs()) os << ' ' << v;
  os << "\nweights";
  for (double v : model.model.raw_weights()) os << ' ' << v;
  os << "\n";
}

void save_policy_model(const std::string& path,
                       const TrainedPolicyModel& model) {
  std::ofstream os(path);
  if (!os) throw InvalidArgumentError("cannot open for writing: " + path);
  save_policy_model(os, model);
}

TrainedPolicyModel load_policy_model(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "mfgpu-policy-model" ||
      version != 1) {
    throw InvalidArgumentError("policy model: bad header");
  }
  std::string token;
  int features = 0, classes = 0;
  if (!(is >> token >> features) || token != "features" ||
      features != kNumFeatures) {
    throw InvalidArgumentError("policy model: unexpected feature count");
  }
  if (!(is >> token >> classes) || token != "classes" ||
      (classes != 4 && classes != 5)) {
    throw InvalidArgumentError("policy model: unexpected class count");
  }

  FeatureVector means{}, stds{};
  if (!(is >> token) || token != "scaler_means") {
    throw InvalidArgumentError("policy model: missing scaler_means");
  }
  for (double& v : means) {
    if (!(is >> v)) throw InvalidArgumentError("policy model: truncated means");
  }
  if (!(is >> token) || token != "scaler_stds") {
    throw InvalidArgumentError("policy model: missing scaler_stds");
  }
  for (double& v : stds) {
    if (!(is >> v)) throw InvalidArgumentError("policy model: truncated stds");
    if (!(v > 0.0)) {
      throw InvalidArgumentError("policy model: non-positive scaler std");
    }
  }

  TrainedPolicyModel model;
  model.model = MultinomialLogistic(kNumFeatures, classes);
  model.scaler = FeatureScaler::from_moments(means, stds);
  if (!(is >> token) || token != "weights") {
    throw InvalidArgumentError("policy model: missing weights");
  }
  for (double& w : model.model.raw_weights()) {
    if (!(is >> w)) {
      throw InvalidArgumentError("policy model: truncated weights");
    }
  }
  return model;
}

TrainedPolicyModel load_policy_model(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw InvalidArgumentError("cannot open for reading: " + path);
  return load_policy_model(is);
}

}  // namespace mfgpu
